"""The Firewire benchmark design (control/sequential-dominated).

A small IEEE-1394-style link-layer controller: the paper's one
control-dominated benchmark, whose high flip-flop fraction makes the
granular PLB *lose* on area ("the design is dominated by sequential
rather than combinational logic").

Blocks: link-state FSM, transmit FSM, receive FSM, a serial CRC-16, a
cycle-timer and retry counters, and a bank of configuration/status
registers with write enables.  Next-state logic is intentionally thin —
the DFF :combinational ratio is what defines this workload.
"""

from __future__ import annotations

from typing import List

from ..netlist.build import CONST0, CONST1, NetlistBuilder, Signal
from ..netlist.core import Netlist
from .rtl import (
    counter,
    crc_register,
    equality,
    moore_fsm,
    register_word,
    register_word_enable,
)

#: CRC-16-CCITT tap positions (x^16 + x^12 + x^5 + 1).
CRC16_TAPS = (0, 5, 12)

DEFAULT_TIMER_BITS = 12
DEFAULT_CONFIG_REGS = 6
DEFAULT_REG_WIDTH = 8
DEFAULT_FIFO_DEPTH = 8


def build_firewire(
    timer_bits: int = DEFAULT_TIMER_BITS,
    config_regs: int = DEFAULT_CONFIG_REGS,
    reg_width: int = DEFAULT_REG_WIDTH,
    fifo_depth: int = DEFAULT_FIFO_DEPTH,
    name: str = "firewire",
) -> Netlist:
    """Build the Firewire-style link controller netlist."""
    b = NetlistBuilder(name)

    bus_request = b.input("bus_request")
    bus_grant = b.input("bus_grant")
    rx_start = b.input("rx_start")
    rx_end = b.input("rx_end")
    tx_ready = b.input("tx_ready")
    ack_received = b.input("ack_received")
    error_in = b.input("error_in")
    data_in = b.input_word("data", 8)
    addr_in = b.input_word("addr", 3)
    write_en = b.input("write_en")

    # ------------------------------------------------------------------
    # Link state FSM: idle -> arbitrating -> granted -> active -> ack wait.
    # ------------------------------------------------------------------
    IDLE, ARB, GRANTED, ACTIVE, ACKWAIT, RECOVER = range(6)
    link_bits, link_onehot = moore_fsm(
        b, 6,
        {
            IDLE: [(bus_request, ARB), (None, IDLE)],
            ARB: [(bus_grant, GRANTED), (error_in, RECOVER), (None, ARB)],
            GRANTED: [(tx_ready, ACTIVE), (None, GRANTED)],
            ACTIVE: [(error_in, RECOVER), (rx_end, ACKWAIT), (None, ACTIVE)],
            ACKWAIT: [(ack_received, IDLE), (error_in, RECOVER), (None, ACKWAIT)],
            RECOVER: [(None, IDLE)],
        },
        name="link",
    )

    # Transmit FSM.
    TIDLE, THEADER, TPAYLOAD, TCRC, TEOF = range(5)
    tx_active = link_onehot[ACTIVE]
    tx_bits, tx_onehot = moore_fsm(
        b, 5,
        {
            TIDLE: [(tx_active, THEADER), (None, TIDLE)],
            THEADER: [(tx_ready, TPAYLOAD), (None, THEADER)],
            TPAYLOAD: [(rx_end, TCRC), (error_in, TIDLE), (None, TPAYLOAD)],
            TCRC: [(None, TEOF)],
            TEOF: [(None, TIDLE)],
        },
        name="tx",
    )

    # Receive FSM.
    RIDLE, RSYNC, RDATA, RCHECK = range(4)
    rx_bits, rx_onehot = moore_fsm(
        b, 4,
        {
            RIDLE: [(rx_start, RSYNC), (None, RIDLE)],
            RSYNC: [(None, RDATA)],
            RDATA: [(rx_end, RCHECK), (error_in, RIDLE), (None, RDATA)],
            RCHECK: [(None, RIDLE)],
        },
        name="rx",
    )

    # ------------------------------------------------------------------
    # Timers, counters, CRC.
    # ------------------------------------------------------------------
    cycle_timer = counter(b, timer_bits, CONST1, name="cycle_timer")
    retry_count = counter(b, 4, link_onehot[RECOVER], name="retry")
    busy_timer = counter(b, 6, tx_onehot[TPAYLOAD], name="busy")

    rx_active = rx_onehot[RDATA]
    crc = crc_register(b, data_in, 16, CRC16_TAPS, rx_active, name="crc16")
    crc_ok = b.NOR(*crc)

    # ------------------------------------------------------------------
    # Transmit / receive data FIFOs (shift-register delay lines) — the
    # bulk of a link layer's flip-flops, with no combinational logic.
    # ------------------------------------------------------------------
    tx_tail: List[Signal] = []
    rx_tail: List[Signal] = []
    for lane, (tail, label) in enumerate(((tx_tail, "txfifo"), (rx_tail, "rxfifo"))):
        for bit_index, bit in enumerate(data_in):
            stage = bit
            for depth in range(fifo_depth):
                stage = b.DFF(stage, name=f"{label}_{bit_index}_{depth}")
            tail.append(stage)

    # ------------------------------------------------------------------
    # Configuration/status register bank.
    # ------------------------------------------------------------------
    reg_outputs: List[List[Signal]] = []
    for r in range(config_regs):
        sel = equality(
            b, addr_in,
            [CONST1 if (r >> i) & 1 else CONST0 for i in range(3)],
        )
        enable = b.AND(write_en, sel)
        reg = register_word_enable(
            b, data_in[:reg_width], enable, name=f"cfg{r}"
        )
        reg_outputs.append(reg)

    status = [
        link_onehot[ACTIVE],
        link_onehot[RECOVER],
        crc_ok,
        retry_count[-1],
        busy_timer[-1],
        rx_onehot[RCHECK],
        tx_onehot[TEOF],
        cycle_timer[-1],
    ]
    status_reg = register_word(b, status, "reg_status")

    # ------------------------------------------------------------------
    # Outputs.
    # ------------------------------------------------------------------
    b.output_word(status_reg, "status")
    b.output_word(link_bits, "link_state")
    b.output_word(tx_bits, "tx_state")
    b.output_word(rx_bits, "rx_state")
    b.output_word(cycle_timer[-4:], "timer_hi")
    b.output_word(tx_tail, "tx_data")
    b.output_word(rx_tail, "rx_data")
    for r, reg in enumerate(reg_outputs):
        b.output(reg[0], f"cfg_bit{r}")
    return b.netlist
