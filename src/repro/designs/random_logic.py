"""Seeded random sequential designs for flow robustness testing.

Generates structurally diverse netlists — random mixes of 2/3-input
gates, muxes, registers and feedback loops — used by the fuzz tests to
exercise the synthesis/compaction/packing pipeline far beyond the four
curated benchmarks.  Fully deterministic per seed.
"""

from __future__ import annotations

import random
from typing import List

from ..logic.truthtable import TruthTable
from ..netlist.build import NetlistBuilder, Signal
from ..netlist.core import Netlist


def build_random_design(
    seed: int,
    n_inputs: int = 6,
    n_gates: int = 60,
    register_rate: float = 0.15,
    n_outputs: int = 6,
    name: str = "",
) -> Netlist:
    """A random sequential design.

    Parameters are soft targets: constant folding may absorb some gates.
    Registers create feedback-free pipeline stages (state feeds later
    logic only through its Q pin, so the design is always legal).
    """
    rng = random.Random(seed)
    b = NetlistBuilder(name or f"rand{seed}")
    signals: List[Signal] = [b.input(f"i{k}") for k in range(n_inputs)]

    for index in range(n_gates):
        arity = rng.choice((1, 2, 2, 3, 3, 3))
        mask = rng.randrange(1 << (1 << arity))
        table = TruthTable(arity, mask)
        picks = [signals[rng.randrange(len(signals))] for _ in range(arity)]
        out = b.gate(table, *picks)
        if out in ("$const0", "$const1"):
            continue
        if rng.random() < register_rate:
            out = b.DFF(out)
        signals.append(out)

    # Pick distinct late signals as outputs (prefer deep logic).
    candidates = [s for s in signals[n_inputs:] if isinstance(s, str)]
    if not candidates:
        candidates = signals[:n_inputs]
    rng.shuffle(candidates)
    for index, signal in enumerate(candidates[:n_outputs]):
        b.output(signal, f"o{index}")
    if not b.netlist.outputs:
        b.output(signals[0], "o0")
    b.netlist.sweep_dangling()
    return b.netlist
