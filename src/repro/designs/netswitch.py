"""The Network-switch benchmark design (datapath-dominated, largest).

A P-port output-queued crossbar switch with W-bit datapath:

* per input port: registered data, a 2-bit destination field, a valid
  bit, an occupancy counter (FIFO-control stand-in) and a CRC-8 checker
  over the data;
* per output port: a round-robin arbiter over requests, a P:1 crossbar
  word mux, and an output register with valid flag.

The paper's network switch is its biggest design (80k gates); ours keeps
the same structure mix — wide muxes, counters, CRC XOR trees — at a
Python-friendly scale.
"""

from __future__ import annotations

from typing import List

from ..netlist.build import CONST0, NetlistBuilder, Signal
from ..netlist.core import Netlist
from .rtl import counter, crc_register, decoder, mux_tree, register_word

DEFAULT_PORTS = 4
DEFAULT_WIDTH = 8

#: CRC-8-ATM polynomial x^8 + x^2 + x + 1 tap positions.
CRC8_TAPS = (0, 1, 2)


def _round_robin_arbiter(
    b: NetlistBuilder, requests: List[Signal], name: str
) -> List[Signal]:
    """One-hot grant with a rotating priority pointer (register pair)."""
    n = len(requests)
    ptr_bits = max(1, (n - 1).bit_length())
    any_req = b.OR(*requests)
    ptr = counter(b, ptr_bits, b.NOT(any_req), name=f"{name}_ptr")
    ptr_onehot = decoder(b, ptr)[:n]

    grants: List[Signal] = [CONST0] * n
    granted: Signal = CONST0
    # Two sweeps starting at the pointer emulate the rotating scan.
    for sweep in range(2):
        for i in range(n):
            eligible = requests[i]
            if sweep == 0:
                # Only positions at or after the pointer.
                at_or_after = CONST0
                for p in range(i + 1):
                    at_or_after = b.OR(at_or_after, ptr_onehot[p])
                eligible = b.AND(eligible, at_or_after)
            take = b.AND(eligible, b.NOT(granted))
            grants[i] = b.OR(grants[i], take)
            granted = b.OR(granted, take)
    return grants


def build_netswitch(
    ports: int = DEFAULT_PORTS, width: int = DEFAULT_WIDTH, name: str = "netswitch"
) -> Netlist:
    """Build the network-switch netlist."""
    b = NetlistBuilder(name)
    dest_bits = max(1, (ports - 1).bit_length())

    in_data: List[List[Signal]] = []
    in_dest: List[List[Signal]] = []
    in_valid: List[Signal] = []
    for p in range(ports):
        data = register_word(b, b.input_word(f"din{p}", width), f"reg_din{p}")
        dest = register_word(b, b.input_word(f"dest{p}", dest_bits), f"reg_dest{p}")
        valid = b.DFF(b.input(f"valid{p}"), name=f"reg_valid{p}")
        in_data.append(data)
        in_dest.append(dest)
        in_valid.append(valid)

        # FIFO-control stand-in: occupancy counter and CRC checker.
        occupancy = counter(b, 4, valid, name=f"fifo{p}")
        b.output(occupancy[-1], f"almost_full{p}")
        crc = crc_register(b, data, 8, CRC8_TAPS, valid, name=f"crc{p}")
        b.output(b.NOR(*crc), f"crc_ok{p}")

    # Requests: input p requests output q when valid and dest == q.
    dest_onehot = [decoder(b, in_dest[p])[:ports] for p in range(ports)]
    for q in range(ports):
        requests = [b.AND(in_valid[p], dest_onehot[p][q]) for p in range(ports)]
        grants = _round_robin_arbiter(b, requests, name=f"arb{q}")

        # Crossbar: select the granted input's word.
        sel_bits: List[Signal] = []
        for bit in range(dest_bits):
            terms = [
                grants[p] for p in range(ports) if (p >> bit) & 1
            ]
            sel_bits.append(b.OR(*terms) if terms else CONST0)
        word = mux_tree(b, sel_bits, in_data)
        out_valid = b.OR(*grants)

        out_word = register_word(b, word, f"reg_dout{q}")
        b.output_word(out_word, f"dout{q}")
        b.output(b.DFF(out_valid, name=f"reg_ovalid{q}"), f"ovalid{q}")

    return b.netlist
