"""The ALU benchmark design (datapath-dominated).

A registered W-bit ALU: add, subtract, and, or, xor, logical shifts,
set-less-than and pass-through, selected by a 3-bit opcode.  Inputs and
results are registered, matching a pipeline stage.  This is the smallest
of the paper's three datapath designs.
"""

from __future__ import annotations

from ..netlist.build import CONST0, NetlistBuilder
from ..netlist.core import Netlist
from .rtl import (
    barrel_shifter,
    less_than,
    mux_tree,
    register_word,
    ripple_adder,
    subtractor,
)

DEFAULT_WIDTH = 16


def build_alu(width: int = DEFAULT_WIDTH, name: str = "alu") -> Netlist:
    """Build the ALU netlist.

    Opcodes: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 shift-left, 6 shift-right,
    7 set-less-than.
    """
    b = NetlistBuilder(name)
    a_in = b.input_word("a", width)
    c_in = b.input_word("c", width)
    op = b.input_word("op", 3)

    # Input registers (pipeline stage boundary).
    a = register_word(b, a_in, "reg_a")
    c = register_word(b, c_in, "reg_c")
    opr = register_word(b, op, "reg_op")

    shamt_bits = max(1, (width - 1).bit_length())
    shamt = c[:shamt_bits]

    add_res, add_carry = ripple_adder(b, a, c)
    sub_res, _ = subtractor(b, a, c)
    and_res = [b.AND(x, y) for x, y in zip(a, c)]
    or_res = [b.OR(x, y) for x, y in zip(a, c)]
    xor_res = [b.XOR(x, y) for x, y in zip(a, c)]
    shl_res = barrel_shifter(b, a, shamt, left=True)
    shr_res = barrel_shifter(b, a, shamt, left=False)
    slt_bit = less_than(b, a, c)
    slt_res = [slt_bit] + [CONST0] * (width - 1)

    result = mux_tree(
        b, opr,
        [add_res, sub_res, and_res, or_res, xor_res, shl_res, shr_res, slt_res],
    )
    zero = b.NOR(*result)

    out = register_word(b, result, "reg_out")
    b.output_word(out, "result")
    b.output(b.DFF(zero, name="reg_zero"), "zero")
    b.output(b.DFF(add_carry, name="reg_carry"), "carry")
    return b.netlist
