"""RTL-style building blocks for the benchmark designs.

These helpers generate gate-level structures through the
:class:`~repro.netlist.build.NetlistBuilder` — ripple/carry arithmetic,
barrel shifters, comparators, multipliers, encoders, CRC networks,
registers, counters and Moore FSMs.  Together they play the role of the
RTL the paper feeds its flow.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from ..netlist.build import CONST0, CONST1, NetlistBuilder, Signal


def full_adder(
    b: NetlistBuilder, x: Signal, y: Signal, cin: Signal
) -> Tuple[Signal, Signal]:
    """(sum, carry-out) — the paper's Section 2.2 structure."""
    p = b.XOR(x, y)
    s = b.XOR(p, cin)
    g = b.AND(x, y)
    cout = b.MUX(p, g, cin)
    return s, cout


def ripple_adder(
    b: NetlistBuilder,
    xs: Sequence[Signal],
    ys: Sequence[Signal],
    cin: Signal = CONST0,
) -> Tuple[List[Signal], Signal]:
    """Ripple-carry adder; returns (sum bits, carry out)."""
    if len(xs) != len(ys):
        raise ValueError("adder operand width mismatch")
    sums: List[Signal] = []
    carry = cin
    for x, y in zip(xs, ys):
        s, carry = full_adder(b, x, y, carry)
        sums.append(s)
    return sums, carry


def subtractor(
    b: NetlistBuilder, xs: Sequence[Signal], ys: Sequence[Signal]
) -> Tuple[List[Signal], Signal]:
    """xs - ys via two's complement; returns (difference, borrow-free)."""
    inverted = [b.NOT(y) for y in ys]
    return ripple_adder(b, xs, inverted, CONST1)


def increment(
    b: NetlistBuilder, xs: Sequence[Signal]
) -> Tuple[List[Signal], Signal]:
    """xs + 1 (half-adder chain)."""
    out: List[Signal] = []
    carry: Signal = CONST1
    for x in xs:
        out.append(b.XOR(x, carry))
        carry = b.AND(x, carry)
    return out, carry


def equality(
    b: NetlistBuilder, xs: Sequence[Signal], ys: Sequence[Signal]
) -> Signal:
    """1 when the words are equal."""
    bits = [b.XNOR(x, y) for x, y in zip(xs, ys)]
    return b.AND(*bits)


def less_than(
    b: NetlistBuilder, xs: Sequence[Signal], ys: Sequence[Signal]
) -> Signal:
    """Unsigned xs < ys (ripple compare from the LSB)."""
    lt: Signal = CONST0
    for x, y in zip(xs, ys):
        eq = b.XNOR(x, y)
        lt_bit = b.AND(b.NOT(x), y)
        lt = b.MUX(eq, lt_bit, lt)
    return lt


def mux_word(
    b: NetlistBuilder,
    select: Signal,
    w0: Sequence[Signal],
    w1: Sequence[Signal],
) -> List[Signal]:
    return [b.MUX(select, a, c) for a, c in zip(w0, w1)]


def mux_tree(
    b: NetlistBuilder,
    selects: Sequence[Signal],
    words: Sequence[Sequence[Signal]],
) -> List[Signal]:
    """2^k-way word mux (``selects`` LSB-first)."""
    level: List[Sequence[Signal]] = list(words)
    for select in selects:
        nxt: List[Sequence[Signal]] = []
        for i in range(0, len(level), 2):
            if i + 1 < len(level):
                nxt.append(mux_word(b, select, level[i], level[i + 1]))
            else:
                nxt.append(list(level[i]))
        level = nxt
    return list(level[0])


def barrel_shifter(
    b: NetlistBuilder,
    xs: Sequence[Signal],
    amount: Sequence[Signal],
    left: bool = True,
) -> List[Signal]:
    """Logarithmic shifter, zero fill."""
    word = list(xs)
    for stage, sel in enumerate(amount):
        shift = 1 << stage
        shifted: List[Signal] = []
        n = len(word)
        for i in range(n):
            src = i - shift if left else i + shift
            shifted.append(word[src] if 0 <= src < n else CONST0)
        word = mux_word(b, sel, word, shifted)
    return word


def array_multiplier(
    b: NetlistBuilder, xs: Sequence[Signal], ys: Sequence[Signal]
) -> List[Signal]:
    """Unsigned array multiplier (carry-save rows)."""
    n, m = len(xs), len(ys)
    acc: List[Signal] = [CONST0] * (n + m)
    for j, y in enumerate(ys):
        partial = [b.AND(x, y) for x in xs]
        carry: Signal = CONST0
        for i, p in enumerate(partial):
            s, carry = full_adder(b, acc[i + j], p, carry)
            acc[i + j] = s
        # Propagate the row carry up the accumulator.
        k = j + n
        while carry != CONST0 and k < n + m:
            acc[k], carry = (
                b.XOR(acc[k], carry),
                b.AND(acc[k], carry),
            )
            k += 1
    return acc


def decoder(b: NetlistBuilder, sel: Sequence[Signal]) -> List[Signal]:
    """k-to-2^k one-hot decoder."""
    outs: List[Signal] = [CONST1]
    for s in sel:
        inv = b.NOT(s)
        outs = [b.AND(o, inv) for o in outs] + [b.AND(o, s) for o in outs]
    return outs


def priority_encoder(
    b: NetlistBuilder, bits: Sequence[Signal]
) -> Tuple[List[Signal], Signal]:
    """Position of the highest set bit; returns (index bits, any-set)."""
    n = len(bits)
    width = max(1, (n - 1).bit_length())
    index: List[Signal] = [CONST0] * width
    found: Signal = CONST0
    for i, bit in enumerate(bits):  # low to high: higher wins
        take = bit
        for w in range(width):
            want = CONST1 if (i >> w) & 1 else CONST0
            index[w] = b.MUX(take, index[w], want)
        found = b.OR(found, take)
    return index, found


def register_word(
    b: NetlistBuilder, word: Sequence[Signal], name: Optional[str] = None
) -> List[Signal]:
    return [
        b.DFF(bit, name=f"{name}_{i}" if name else None)
        for i, bit in enumerate(word)
    ]


def register_word_enable(
    b: NetlistBuilder,
    word: Sequence[Signal],
    enable: Signal,
    name: Optional[str] = None,
) -> List[Signal]:
    """Register with write enable (mux feedback)."""
    outs: List[Signal] = []
    for i, bit in enumerate(word):
        q_name = f"{name}_{i}" if name else None
        # Build the DFF first so the feedback net exists.
        d_placeholder = b.netlist.add_net()
        q = b.netlist.add_instance(
            b._dff, {"D": d_placeholder}, name=q_name
        ).output_net
        d = b._materialize(b.MUX(enable, q, bit))
        # Rewire: connect the mux output to the DFF's D.
        inst_name = b.netlist.nets[q].driver[0]
        b.netlist.rewire_sink(inst_name, "D", d)
        b.netlist.nets[d_placeholder].sinks  # placeholder now unused
        _drop_placeholder(b, d_placeholder)
        outs.append(q)
    return outs


def _drop_placeholder(b: NetlistBuilder, net: str) -> None:
    if not b.netlist.nets[net].sinks and b.netlist.nets[net].driver is None:
        b.netlist.remove_net(net)


def counter(
    b: NetlistBuilder, width: int, enable: Signal, name: str
) -> List[Signal]:
    """Free-running (gated) binary counter."""
    qs: List[Signal] = []
    d_nets: List[str] = []
    for i in range(width):
        placeholder = b.netlist.add_net()
        q = b.netlist.add_instance(
            b._dff, {"D": placeholder}, name=f"{name}_{i}"
        ).output_net
        qs.append(q)
        d_nets.append(placeholder)
    incremented, _ = increment(b, qs)
    for i in range(width):
        d = b._materialize(b.MUX(enable, qs[i], incremented[i]))
        dff_name = b.netlist.nets[qs[i]].driver[0]
        b.netlist.rewire_sink(dff_name, "D", d)
        _drop_placeholder(b, d_nets[i])
    return qs


def moore_fsm(
    b: NetlistBuilder,
    n_states: int,
    transitions: Mapping[int, Sequence[Tuple[Optional[Signal], int]]],
    name: str,
) -> Tuple[List[Signal], List[Signal]]:
    """A Moore FSM over one-hot-decoded binary state.

    ``transitions[state]`` is a priority list of ``(condition, next)``;
    ``condition None`` is the default arc.  Returns (state bits, one-hot
    state lines).
    """
    width = max(1, (n_states - 1).bit_length())
    qs: List[Signal] = []
    placeholders: List[str] = []
    for i in range(width):
        placeholder = b.netlist.add_net()
        q = b.netlist.add_instance(
            b._dff, {"D": placeholder}, name=f"{name}_s{i}"
        ).output_net
        qs.append(q)
        placeholders.append(placeholder)
    onehot = decoder(b, qs)[:n_states]

    next_bits: List[Signal] = [CONST0] * width

    def const_word(value: int) -> List[Signal]:
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    for state in range(n_states):
        arcs = list(transitions.get(state, [(None, state)]))
        target: List[Signal] = const_word(state)
        # Apply priority arcs from lowest priority (default) upwards.
        for condition, nxt in reversed(arcs):
            word = const_word(nxt)
            if condition is None:
                target = word
            else:
                target = mux_word(b, condition, target, word)
        gated = [b.AND(onehot[state], bit) for bit in target]
        next_bits = [b.OR(acc, g) for acc, g in zip(next_bits, gated)]

    for i in range(width):
        dff_name = b.netlist.nets[qs[i]].driver[0]
        b.netlist.rewire_sink(dff_name, "D", b._materialize(next_bits[i]))
        _drop_placeholder(b, placeholders[i])
    return qs, onehot


def crc_step(
    b: NetlistBuilder,
    state: Sequence[Signal],
    data_bit: Signal,
    taps: Sequence[int],
) -> List[Signal]:
    """One serial CRC shift with polynomial ``taps`` (bit positions)."""
    width = len(state)
    feedback = b.XOR(state[width - 1], data_bit)
    nxt: List[Signal] = []
    for i in range(width):
        bit = state[i - 1] if i > 0 else CONST0
        if i in taps:
            bit = b.XOR(bit, feedback) if bit != CONST0 else feedback
        nxt.append(bit)
    return nxt


def crc_register(
    b: NetlistBuilder,
    data_bits: Sequence[Signal],
    width: int,
    taps: Sequence[int],
    enable: Signal,
    name: str,
) -> List[Signal]:
    """A CRC register consuming ``data_bits`` per cycle (unrolled)."""
    qs: List[Signal] = []
    placeholders: List[str] = []
    for i in range(width):
        placeholder = b.netlist.add_net()
        q = b.netlist.add_instance(
            b._dff, {"D": placeholder}, name=f"{name}_{i}"
        ).output_net
        qs.append(q)
        placeholders.append(placeholder)
    state: List[Signal] = list(qs)
    for bit in data_bits:
        state = crc_step(b, state, bit, taps)
    for i in range(width):
        d = b._materialize(b.MUX(enable, qs[i], state[i]))
        dff_name = b.netlist.nets[qs[i]].driver[0]
        b.netlist.rewire_sink(dff_name, "D", d)
        _drop_placeholder(b, placeholders[i])
    return qs
