"""The FPU benchmark design (datapath-dominated, the paper's largest win).

A registered floating-point unit over a compact custom format
(1 sign + E exponent + M mantissa bits, FP16-like by default) with an
adder and a multiplier datapath selected by one opcode bit:

* **add**: exponent compare/subtract, mantissa swap and alignment
  (barrel shift), mantissa add, leading-one detection (priority encoder)
  and normalization shift;
* **mul**: (M+1) x (M+1) array multiplier over the implicit-one
  mantissas, exponent add, single-step normalization.

No rounding/denormal handling — the paper's FPU is a performance
workload, not an IEEE core; what matters is the adder/shifter/multiplier
mix that dominates real FPUs.
"""

from __future__ import annotations

from ..netlist.build import CONST0, CONST1, NetlistBuilder
from ..netlist.core import Netlist
from .rtl import (
    array_multiplier,
    barrel_shifter,
    less_than,
    mux_word,
    priority_encoder,
    register_word,
    ripple_adder,
    subtractor,
)

DEFAULT_EXP = 5
DEFAULT_MANT = 10


def build_fpu(
    exp_bits: int = DEFAULT_EXP, mant_bits: int = DEFAULT_MANT, name: str = "fpu"
) -> Netlist:
    """Build the FPU netlist (width = 1 + exp_bits + mant_bits)."""
    b = NetlistBuilder(name)
    width = 1 + exp_bits + mant_bits
    x_in = b.input_word("x", width)
    y_in = b.input_word("y", width)
    mul_op = b.input("op_mul")

    x = register_word(b, x_in, "reg_x")
    y = register_word(b, y_in, "reg_y")
    op = b.DFF(mul_op, name="reg_op")

    def unpack(word):
        mant = word[:mant_bits]
        exp = word[mant_bits:mant_bits + exp_bits]
        sign = word[width - 1]
        return sign, exp, mant

    xs, xe, xm = unpack(x)
    ys, ye, ym = unpack(y)

    # ------------------------------------------------------------------
    # Adder path (same-sign magnitude add; swap so |x| >= |y|).
    # ------------------------------------------------------------------
    x_smaller = less_than(b, xe, ye)
    big_e = mux_word(b, x_smaller, xe, ye)
    small_e = mux_word(b, x_smaller, ye, xe)
    big_m = mux_word(b, x_smaller, xm, ym)
    small_m = mux_word(b, x_smaller, ym, xm)
    big_s = b.MUX(x_smaller, xs, ys)

    ediff, _ = subtractor(b, big_e, small_e)
    shamt_bits = max(1, (mant_bits).bit_length())
    # Implicit leading one on both mantissas.
    big_full = big_m + [CONST1]
    small_full = small_m + [CONST1]
    aligned = barrel_shifter(b, small_full, ediff[:shamt_bits], left=False)

    mant_sum, sum_carry = ripple_adder(b, big_full, aligned)
    sum_ext = mant_sum + [sum_carry]

    # Normalize: find the leading one and shift it to the top.
    lead_index, any_set = priority_encoder(b, sum_ext)
    # Shift amount = (len-1) - index; compute via subtractor on index bits.
    top = len(sum_ext) - 1
    top_bits = [CONST1 if (top >> i) & 1 else CONST0 for i in range(len(lead_index))]
    norm_shift, _ = subtractor(b, top_bits, lead_index)
    normalized = barrel_shifter(b, sum_ext, norm_shift[: len(lead_index)], left=True)
    add_mant = normalized[len(sum_ext) - mant_bits:]
    # Exponent adjust: big_e + 1 - norm_shift (carry case), approximated
    # with one adder: big_e + (sum_carry ? 1 : 0) - handled via mux.
    e_plus1, _ = ripple_adder(b, big_e, [CONST1] + [CONST0] * (exp_bits - 1))
    add_exp = mux_word(b, sum_carry, big_e, e_plus1)
    add_sign = big_s

    # ------------------------------------------------------------------
    # Multiplier path.
    # ------------------------------------------------------------------
    xm_full = xm + [CONST1]
    ym_full = ym + [CONST1]
    product = array_multiplier(b, xm_full, ym_full)
    # Product of two 1.M numbers is in [1, 4): top bit selects normalize.
    # With the leading one at bit 2M+1 (value >= 2) the mantissa is bits
    # [M+1 .. 2M]; with it at bit 2M (value < 2) the mantissa is [M .. 2M-1].
    p_top = product[-1]
    top = len(product)  # == 2 * (mant_bits + 1)
    prod_hi = product[top - mant_bits - 1: top - 1]
    prod_lo = product[top - mant_bits - 2: top - 2]
    mul_mant = mux_word(b, p_top, prod_lo, prod_hi)
    exp_sum, _ = ripple_adder(b, xe, ye)
    exp_adj, _ = ripple_adder(
        b, exp_sum, [p_top] + [CONST0] * (exp_bits - 1)
    )
    mul_exp = exp_adj
    mul_sign = b.XOR(xs, ys)

    # ------------------------------------------------------------------
    # Select, pack, register.
    # ------------------------------------------------------------------
    out_mant = mux_word(b, op, add_mant, mul_mant)
    out_exp = mux_word(b, op, add_exp, mul_exp)
    out_sign = b.MUX(op, add_sign, mul_sign)
    zero_flag = b.MUX(op, b.NOT(any_set), CONST0)

    packed = list(out_mant) + list(out_exp) + [out_sign]
    out = register_word(b, packed, "reg_out")
    b.output_word(out, "result")
    b.output(b.DFF(zero_flag, name="reg_zero"), "zero")
    return b.netlist
