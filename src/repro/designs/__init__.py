"""The four benchmark designs of the paper's evaluation.

ALU, FPU and Network switch are datapath-dominated; Firewire is a
control/sequential-dominated link controller — the mix Section 3.2 uses
to show that the optimal PLB depends on the application domain.
"""

from .alu import build_alu
from .fpu import build_fpu
from .netswitch import build_netswitch
from .firewire import build_firewire
from .random_logic import build_random_design
from . import rtl

DESIGN_BUILDERS = {
    "alu": build_alu,
    "fpu": build_fpu,
    "netswitch": build_netswitch,
    "firewire": build_firewire,
}

__all__ = [
    "build_alu",
    "build_fpu",
    "build_netswitch",
    "build_firewire",
    "DESIGN_BUILDERS",
    "build_random_design",
    "rtl",
]
