"""Boolean-function substrate: truth tables, NPN classes, expressions."""

from .truthtable import TruthTable, all_functions, all_permutations
from .npn import (
    NPNTransform,
    npn_canonical,
    npn_canonical_with_transform,
    npn_class,
    npn_classes,
    npn_equivalent,
    npn_transforms,
)
from .expr import ExprError, parse, table_from_expr, variables

__all__ = [
    "TruthTable",
    "all_functions",
    "all_permutations",
    "NPNTransform",
    "npn_canonical",
    "npn_canonical_with_transform",
    "npn_class",
    "npn_classes",
    "npn_equivalent",
    "npn_transforms",
    "ExprError",
    "parse",
    "table_from_expr",
    "variables",
]
