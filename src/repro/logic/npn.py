"""NPN canonicalization of small Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other by
Negating inputs, Permuting inputs, and/or Negating the output.  Library
matching in :mod:`repro.synth.techmap` and the component feasibility sets in
:mod:`repro.core` work on NPN classes so that a cell with free input/output
polarity (the paper's "with programmable inversion" gates, and a fabric that
offers both polarities of every signal) matches every function in the class.

Canonicalization is exhaustive (``2^n * n! * 2`` transforms), which is the
right tool for n <= 4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Tuple

from .truthtable import TruthTable, all_functions


@dataclass(frozen=True)
class NPNTransform:
    """One concrete NPN transform.

    Applying the transform to a function ``f`` yields
    ``g(x) = f(perm/polarity-adjusted x) ^ output_flip``: new input ``i``
    is old input ``perm[i]``, complemented when bit ``i`` of
    ``input_flips`` is set.
    """

    perm: Tuple[int, ...]
    input_flips: int
    output_flip: bool

    def apply(self, table: TruthTable) -> TruthTable:
        result = table.permute(self.perm)
        for i in range(result.n_inputs):
            if (self.input_flips >> i) & 1:
                result = result.flip_input(i)
        if self.output_flip:
            result = ~result
        return result


def npn_transforms(n_inputs: int):
    """Iterate every NPN transform for ``n_inputs`` inputs."""
    for perm in itertools.permutations(range(n_inputs)):
        for input_flips in range(1 << n_inputs):
            for output_flip in (False, True):
                yield NPNTransform(perm, input_flips, output_flip)


def npn_canonical(table: TruthTable) -> TruthTable:
    """The canonical (minimum-mask) representative of the NPN class."""
    canon, _ = npn_canonical_with_transform(table)
    return canon


def npn_canonical_with_transform(table: TruthTable) -> Tuple[TruthTable, NPNTransform]:
    """Canonical representative plus a transform mapping ``table`` to it."""
    best = None
    best_transform = None
    for transform in npn_transforms(table.n_inputs):
        candidate = transform.apply(table)
        if best is None or candidate.mask < best.mask:
            best = candidate
            best_transform = transform
    assert best is not None and best_transform is not None
    return best, best_transform


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when ``a`` and ``b`` are in the same NPN class."""
    if a.n_inputs != b.n_inputs:
        return False
    return npn_canonical(a) == npn_canonical(b)


def npn_class(table: TruthTable) -> FrozenSet[TruthTable]:
    """Every function NPN-equivalent to ``table``."""
    return frozenset(t.apply(table) for t in npn_transforms(table.n_inputs))


@lru_cache(maxsize=None)
def npn_classes(n_inputs: int) -> Tuple[TruthTable, ...]:
    """All NPN class representatives for ``n_inputs`` inputs, sorted by mask.

    Classic counts: 2 classes for n=1 (constant, identity), 4 for n=2,
    14 for n=3 — asserted by the test suite.
    """
    seen: Dict[int, TruthTable] = {}
    for table in all_functions(n_inputs):
        canon = npn_canonical(table)
        seen.setdefault(canon.mask, canon)
    return tuple(sorted(seen.values(), key=lambda t: t.mask))
