"""NPN canonicalization of small Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other by
Negating inputs, Permuting inputs, and/or Negating the output.  Library
matching in :mod:`repro.synth.techmap` and the component feasibility sets in
:mod:`repro.core` work on NPN classes so that a cell with free input/output
polarity (the paper's "with programmable inversion" gates, and a fabric that
offers both polarities of every signal) matches every function in the class.

Canonicalization for n <= 3 goes through an exact precomputed lookup
table: every NPN transform reduces to a row permutation plus an output
complement, so the whole ``mask -> (canonical mask, transform)`` map for
the 256 3-input functions is derived once (per input count) and each
subsequent call is a tuple index.  The result is *identical* to the
exhaustive ``2^n * n! * 2`` search — the table is built by running that
search with the same transform ordering and first-minimum tie-break —
which remains the fallback for n = 4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Tuple

from .truthtable import TruthTable, all_functions


@dataclass(frozen=True)
class NPNTransform:
    """One concrete NPN transform.

    Applying the transform to a function ``f`` yields
    ``g(x) = f(perm/polarity-adjusted x) ^ output_flip``: new input ``i``
    is old input ``perm[i]``, complemented when bit ``i`` of
    ``input_flips`` is set.
    """

    perm: Tuple[int, ...]
    input_flips: int
    output_flip: bool

    def apply(self, table: TruthTable) -> TruthTable:
        result = table.permute(self.perm)
        for i in range(result.n_inputs):
            if (self.input_flips >> i) & 1:
                result = result.flip_input(i)
        if self.output_flip:
            result = ~result
        return result


def npn_transforms(n_inputs: int):
    """Iterate every NPN transform for ``n_inputs`` inputs."""
    for perm in itertools.permutations(range(n_inputs)):
        for input_flips in range(1 << n_inputs):
            for output_flip in (False, True):
                yield NPNTransform(perm, input_flips, output_flip)


#: Input counts served by the exact lookup table (n=3 costs 256 entries
#: x 96 transforms to build once; n=4 would be 65536 x 768).
_LUT_MAX_INPUTS = 3


@lru_cache(maxsize=None)
def _transforms_of(n_inputs: int) -> Tuple[NPNTransform, ...]:
    return tuple(npn_transforms(n_inputs))


@lru_cache(maxsize=None)
def _row_maps(n_inputs: int) -> Tuple[Tuple[Tuple[int, ...], bool], ...]:
    """Per transform: the row permutation it induces, plus the output flip.

    ``apply`` is ``permute`` then per-input ``flip_input`` then an
    optional complement; the first two compose into a pure row relabeling
    ``new bit r = old bit P(r ^ F)`` where ``P`` routes index bit ``i``
    to ``perm[i]`` and ``F`` is the input-flip mask.
    """
    maps = []
    for t in _transforms_of(n_inputs):
        rows = []
        for row in range(1 << n_inputs):
            src = row ^ t.input_flips
            old_row = 0
            for i, old_i in enumerate(t.perm):
                if (src >> i) & 1:
                    old_row |= 1 << old_i
            rows.append(old_row)
        maps.append((tuple(rows), t.output_flip))
    return tuple(maps)


@lru_cache(maxsize=None)
def _canonical_lut(n_inputs: int) -> Tuple[Tuple[int, int], ...]:
    """``mask -> (canonical mask, transform index)`` for every function.

    Iterates transforms in :func:`npn_transforms` order keeping the first
    strict minimum, exactly like the exhaustive search, so the two paths
    agree bit for bit (asserted by the test suite over all 256 masks).
    """
    n_rows = 1 << n_inputs
    full = (1 << n_rows) - 1
    maps = _row_maps(n_inputs)
    lut = []
    for mask in range(full + 1):
        best = None
        best_index = 0
        for index, (rows, output_flip) in enumerate(maps):
            candidate = 0
            for row in range(n_rows):
                if (mask >> rows[row]) & 1:
                    candidate |= 1 << row
            if output_flip:
                candidate ^= full
            if best is None or candidate < best:
                best = candidate
                best_index = index
        lut.append((best, best_index))
    return tuple(lut)


def npn_canonical(table: TruthTable) -> TruthTable:
    """The canonical (minimum-mask) representative of the NPN class."""
    if table.n_inputs <= _LUT_MAX_INPUTS:
        canon_mask, _index = _canonical_lut(table.n_inputs)[table.mask]
        return TruthTable(table.n_inputs, canon_mask)
    canon, _ = npn_canonical_with_transform(table)
    return canon


def npn_canonical_with_transform(table: TruthTable) -> Tuple[TruthTable, NPNTransform]:
    """Canonical representative plus a transform mapping ``table`` to it."""
    if table.n_inputs <= _LUT_MAX_INPUTS:
        canon_mask, index = _canonical_lut(table.n_inputs)[table.mask]
        return (
            TruthTable(table.n_inputs, canon_mask),
            _transforms_of(table.n_inputs)[index],
        )
    return _npn_canonical_exhaustive(table)


def _npn_canonical_exhaustive(table: TruthTable) -> Tuple[TruthTable, NPNTransform]:
    """The plain ``2^n * n! * 2`` search (fallback and golden reference)."""
    best = None
    best_transform = None
    for transform in npn_transforms(table.n_inputs):
        candidate = transform.apply(table)
        if best is None or candidate.mask < best.mask:
            best = candidate
            best_transform = transform
    assert best is not None and best_transform is not None
    return best, best_transform


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when ``a`` and ``b`` are in the same NPN class."""
    if a.n_inputs != b.n_inputs:
        return False
    return npn_canonical(a) == npn_canonical(b)


def npn_class(table: TruthTable) -> FrozenSet[TruthTable]:
    """Every function NPN-equivalent to ``table``."""
    return frozenset(t.apply(table) for t in npn_transforms(table.n_inputs))


@lru_cache(maxsize=None)
def npn_classes(n_inputs: int) -> Tuple[TruthTable, ...]:
    """All NPN class representatives for ``n_inputs`` inputs, sorted by mask.

    Classic counts: 2 classes for n=1 (constant, identity), 4 for n=2,
    14 for n=3 — asserted by the test suite.
    """
    seen: Dict[int, TruthTable] = {}
    for table in all_functions(n_inputs):
        canon = npn_canonical(table)
        seen.setdefault(canon.mask, canon)
    return tuple(sorted(seen.values(), key=lambda t: t.mask))
