"""Truth tables for small Boolean functions.

A :class:`TruthTable` is an immutable Boolean function of ``n`` ordered
inputs, stored as a bitmask over the ``2**n`` input rows.  Row index ``r``
encodes the input assignment in which input ``i`` has value ``(r >> i) & 1``
(input 0 is the least-significant index bit).  Bit ``r`` of :attr:`mask` is
the function output for that row.

This convention makes Shannon cofactoring, input permutation and polarity
manipulation cheap bit arithmetic, which the architecture-analysis code in
:mod:`repro.core` relies on heavily (it enumerates all 256 3-input
functions many times).

Small tables (``n_inputs <= 4``) are *interned*: the constructor returns
the one canonical instance per ``(n_inputs, mask)`` pair, so the
realization-table and NPN machinery — which construct the same few
hundred functions tens of millions of times — pay a dict lookup instead
of an allocation, and equality on the hot paths short-circuits on
identity.  Interning is purely an optimization; value semantics
(``__eq__``/``__hash__``/pickling) are unchanged.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Sequence, Tuple


def _row_count(n_inputs: int) -> int:
    return 1 << n_inputs


def _full_mask(n_inputs: int) -> int:
    return (1 << _row_count(n_inputs)) - 1


#: Tables with at most this many inputs are interned (n=4 tops out at
#: 65536 distinct functions; beyond that masks are huge and rare).
_INTERN_MAX_INPUTS = 4

_interned: Dict[Tuple[int, int], "TruthTable"] = {}

_var_masks: Dict[Tuple[int, int], int] = {}


def _var_mask(n_inputs: int, index: int) -> int:
    """Bitmask of rows where input ``index`` is 1 (cached projection)."""
    key = (n_inputs, index)
    mask = _var_masks.get(key)
    if mask is None:
        mask = 0
        for row in range(_row_count(n_inputs)):
            if (row >> index) & 1:
                mask |= 1 << row
        _var_masks[key] = mask
    return mask


class TruthTable:
    """An immutable Boolean function of ``n_inputs`` variables.

    Parameters
    ----------
    n_inputs:
        Number of inputs (0 to 16; functions here are tiny by design).
    mask:
        Output bitmask over the ``2**n_inputs`` rows.

    Examples
    --------
    >>> a, b = TruthTable.inputs(2)
    >>> (a & b).mask
    8
    >>> (a ^ b) == TruthTable(2, 0b0110)
    True
    """

    __slots__ = ("n_inputs", "mask")

    MAX_INPUTS = 16

    def __new__(cls, n_inputs: int, mask: int):
        # Interned fast path: only validated instances enter the cache, so
        # a hit needs no re-validation.  Subclasses bypass the cache.
        if cls is TruthTable:
            cached = _interned.get((n_inputs, mask))
            if cached is not None:
                return cached
        if not 0 <= n_inputs <= cls.MAX_INPUTS:
            raise ValueError(f"n_inputs must be in [0, {cls.MAX_INPUTS}], got {n_inputs}")
        full = _full_mask(n_inputs)
        if not 0 <= mask <= full:
            raise ValueError(f"mask {mask:#x} out of range for {n_inputs} inputs")
        self = object.__new__(cls)
        object.__setattr__(self, "n_inputs", n_inputs)
        object.__setattr__(self, "mask", mask)
        if cls is TruthTable and n_inputs <= _INTERN_MAX_INPUTS:
            _interned[(n_inputs, mask)] = self
        return self

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("TruthTable is immutable")

    def __reduce__(self):
        # Slots + the immutability guard break default pickling; rebuild
        # through __init__ so cached/parallel flow results stay portable.
        return (TruthTable, (self.n_inputs, self.mask))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, n_inputs: int, value: bool) -> "TruthTable":
        """The constant-``value`` function of ``n_inputs`` variables."""
        return cls(n_inputs, _full_mask(n_inputs) if value else 0)

    @classmethod
    def input_var(cls, n_inputs: int, index: int) -> "TruthTable":
        """The projection function returning input ``index``."""
        if not 0 <= index < n_inputs:
            raise ValueError(f"input index {index} out of range for {n_inputs} inputs")
        return cls(n_inputs, _var_mask(n_inputs, index))

    @classmethod
    def inputs(cls, n_inputs: int) -> Tuple["TruthTable", ...]:
        """All projection functions, in input order."""
        return tuple(cls.input_var(n_inputs, i) for i in range(n_inputs))

    @classmethod
    def from_function(cls, n_inputs: int, fn: Callable[..., bool]) -> "TruthTable":
        """Build a table by evaluating ``fn`` on every input row.

        ``fn`` receives ``n_inputs`` ints (0/1), input 0 first.
        """
        mask = 0
        for row in range(_row_count(n_inputs)):
            bits = tuple((row >> i) & 1 for i in range(n_inputs))
            if fn(*bits):
                mask |= 1 << row
        return cls(n_inputs, mask)

    @classmethod
    def from_rows(cls, rows: Sequence[int]) -> "TruthTable":
        """Build a table from an explicit output-per-row sequence.

        ``len(rows)`` must be a power of two; ``rows[r]`` is the output for
        row ``r``.
        """
        n_rows = len(rows)
        if n_rows == 0 or n_rows & (n_rows - 1):
            raise ValueError("row count must be a nonzero power of two")
        n_inputs = n_rows.bit_length() - 1
        mask = 0
        for row, value in enumerate(rows):
            if value not in (0, 1, True, False):
                raise ValueError(f"row {row} value must be 0/1, got {value!r}")
            if value:
                mask |= 1 << row
        return cls(n_inputs, mask)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if self is other:  # interned tables compare by identity first
            return True
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.n_inputs == other.n_inputs and self.mask == other.mask

    def __hash__(self) -> int:
        return hash((self.n_inputs, self.mask))

    def __repr__(self) -> str:
        width = _row_count(self.n_inputs)
        return f"TruthTable({self.n_inputs}, 0b{self.mask:0{width}b})"

    def __call__(self, *bits: int) -> int:
        """Evaluate the function on one input assignment."""
        if len(bits) != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} inputs, got {len(bits)}")
        row = 0
        for i, bit in enumerate(bits):
            if bit not in (0, 1, True, False):
                raise ValueError(f"input {i} must be 0/1, got {bit!r}")
            if bit:
                row |= 1 << i
        return (self.mask >> row) & 1

    def rows(self) -> Tuple[int, ...]:
        """Output value per row, row 0 first."""
        return tuple((self.mask >> r) & 1 for r in range(_row_count(self.n_inputs)))

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def _check_compat(self, other: "TruthTable") -> None:
        if self.n_inputs != other.n_inputs:
            raise ValueError(
                f"input-count mismatch: {self.n_inputs} vs {other.n_inputs}"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.n_inputs, self.mask & other.mask)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.n_inputs, self.mask | other.mask)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compat(other)
        return TruthTable(self.n_inputs, self.mask ^ other.mask)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n_inputs, self.mask ^ _full_mask(self.n_inputs))

    @staticmethod
    def mux(select: "TruthTable", d0: "TruthTable", d1: "TruthTable") -> "TruthTable":
        """2:1 multiplexer: ``select ? d1 : d0``."""
        select._check_compat(d0)
        select._check_compat(d1)
        return (~select & d0) | (select & d1)

    # ------------------------------------------------------------------
    # Shannon decomposition and input surgery
    # ------------------------------------------------------------------
    def cofactor(self, index: int, value: int) -> "TruthTable":
        """Shannon cofactor with input ``index`` fixed to ``value``.

        The result has ``n_inputs - 1`` inputs; remaining inputs keep their
        relative order.
        """
        if not 0 <= index < self.n_inputs:
            raise ValueError(f"input index {index} out of range")
        if value not in (0, 1):
            raise ValueError("cofactor value must be 0 or 1")
        new_n = self.n_inputs - 1
        mask = 0
        for new_row in range(_row_count(new_n)):
            low = new_row & ((1 << index) - 1)
            high = new_row >> index
            old_row = low | (value << index) | (high << (index + 1))
            if (self.mask >> old_row) & 1:
                mask |= 1 << new_row
        return TruthTable(new_n, mask)

    def depends_on(self, index: int) -> bool:
        """True when the output actually depends on input ``index``.

        Equivalent to comparing the two Shannon cofactors, computed as
        pure bit arithmetic: within every aligned block of ``2**(i+1)``
        rows the upper half (input ``i`` = 1), shifted down onto the
        lower half, must match it exactly for the input to be unused.
        """
        if not 0 <= index < self.n_inputs:
            raise ValueError(f"input index {index} out of range")
        low_rows = _full_mask(self.n_inputs) & ~_var_mask(self.n_inputs, index)
        return ((self.mask >> (1 << index)) & low_rows) != (self.mask & low_rows)

    def support(self) -> Tuple[int, ...]:
        """Indices of inputs the function truly depends on."""
        mask, n = self.mask, self.n_inputs
        full = _full_mask(n)
        out = []
        for i in range(n):
            low_rows = full & ~_var_mask(n, i)
            if ((mask >> (1 << i)) & low_rows) != (mask & low_rows):
                out.append(i)
        return tuple(out)

    def flip_input(self, index: int) -> "TruthTable":
        """Complement input ``index`` (i.e. ``f(..., x_i', ...)``)."""
        if not 0 <= index < self.n_inputs:
            raise ValueError(f"input index {index} out of range")
        mask = 0
        for row in range(_row_count(self.n_inputs)):
            if (self.mask >> (row ^ (1 << index))) & 1:
                mask |= 1 << row
        return TruthTable(self.n_inputs, mask)

    def permute(self, order: Sequence[int]) -> "TruthTable":
        """Re-order inputs: new input ``i`` is old input ``order[i]``."""
        if sorted(order) != list(range(self.n_inputs)):
            raise ValueError(f"order must be a permutation of 0..{self.n_inputs - 1}")
        mask = 0
        for new_row in range(_row_count(self.n_inputs)):
            old_row = 0
            for new_i, old_i in enumerate(order):
                if (new_row >> new_i) & 1:
                    old_row |= 1 << old_i
            if (self.mask >> old_row) & 1:
                mask |= 1 << new_row
        return TruthTable(self.n_inputs, mask)

    def extend(self, n_inputs: int) -> "TruthTable":
        """Pad with unused high-index inputs up to ``n_inputs`` total."""
        if n_inputs < self.n_inputs:
            raise ValueError("extend cannot shrink a table")
        table = self
        while table.n_inputs < n_inputs:
            table = TruthTable(
                table.n_inputs + 1,
                table.mask | (table.mask << _row_count(table.n_inputs)),
            )
        return table

    def shrink_to_support(self) -> Tuple["TruthTable", Tuple[int, ...]]:
        """Drop unused inputs; returns (table, kept original indices)."""
        kept = self.support()
        table = self
        # Remove from highest index down so lower indices stay valid.
        for index in range(self.n_inputs - 1, -1, -1):
            if index not in kept:
                table = table.cofactor(index, 0)
        return table, kept

    def compose(self, subs: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute each input with a function over a common input set.

        ``subs[i]`` replaces input ``i``; all substitutions must share the
        same input count, which becomes the result's input count.
        """
        if len(subs) != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} substitutions, got {len(subs)}")
        if self.n_inputs == 0:
            raise ValueError("cannot compose a constant; use extend() instead")
        outer_n = subs[0].n_inputs
        for sub in subs:
            if sub.n_inputs != outer_n:
                raise ValueError("all substitutions must have the same input count")
        mask = 0
        for row in range(_row_count(outer_n)):
            inner_row = 0
            for i, sub in enumerate(subs):
                if (sub.mask >> row) & 1:
                    inner_row |= 1 << i
            if (self.mask >> inner_row) & 1:
                mask |= 1 << row
        return TruthTable(outer_n, mask)

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    def is_constant(self) -> bool:
        return self.mask in (0, _full_mask(self.n_inputs))

    def is_parity(self) -> bool:
        """True for XOR/XNOR of the full input set (n >= 2)."""
        if self.n_inputs < 2:
            return False
        parity = TruthTable.input_var(self.n_inputs, 0)
        for i in range(1, self.n_inputs):
            parity = parity ^ TruthTable.input_var(self.n_inputs, i)
        return self in (parity, ~parity)

    def minterm_count(self) -> int:
        return bin(self.mask).count("1")


def all_functions(n_inputs: int) -> Iterable[TruthTable]:
    """Iterate over every Boolean function of ``n_inputs`` variables."""
    if n_inputs > 4:
        raise ValueError("enumerating more than 4-input functions is intractable here")
    for mask in range(_full_mask(n_inputs) + 1):
        yield TruthTable(n_inputs, mask)


def all_permutations(n_inputs: int) -> Tuple[Tuple[int, ...], ...]:
    """All input orderings for ``n_inputs`` inputs."""
    return tuple(itertools.permutations(range(n_inputs)))
