"""A tiny Boolean expression language.

Used by tests, examples and the design generators to state functions
readably (``"s ? a : b"``-free: we use explicit operators).  Grammar, in
order of decreasing precedence::

    primary := NAME | '0' | '1' | '(' expr ')' | '~' primary
    conj    := primary ('&' primary)*
    parity  := conj ('^' conj)*
    expr    := parity ('|' parity)*

Names are ``[A-Za-z_][A-Za-z0-9_]*``.  :func:`parse` returns an AST;
:func:`evaluate` produces a :class:`~repro.logic.truthtable.TruthTable`
over a caller-supplied input ordering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from .truthtable import TruthTable

_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*|[01]|[()~&^|])")


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Const:
    value: bool


@dataclass(frozen=True)
class Not:
    operand: "Node"


@dataclass(frozen=True)
class Op:
    kind: str  # '&', '|', '^'
    operands: Tuple["Node", ...]


Node = Union[Var, Const, Not, Op]


class ExprError(ValueError):
    """Raised on malformed expressions."""


def tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ExprError(f"unexpected character at {text[pos:]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> str:
        return self._tokens[self._index] if self._index < len(self._tokens) else ""

    def _next(self) -> str:
        token = self._peek()
        self._index += 1
        return token

    def parse(self) -> Node:
        node = self._expr()
        if self._index != len(self._tokens):
            raise ExprError(f"trailing tokens: {self._tokens[self._index:]}")
        return node

    def _expr(self) -> Node:
        return self._binary("|", self._parity)

    def _parity(self) -> Node:
        return self._binary("^", self._conj)

    def _conj(self) -> Node:
        return self._binary("&", self._primary)

    def _binary(self, op: str, sub) -> Node:
        operands = [sub()]
        while self._peek() == op:
            self._next()
            operands.append(sub())
        if len(operands) == 1:
            return operands[0]
        return Op(op, tuple(operands))

    def _primary(self) -> Node:
        token = self._next()
        if token == "~":
            return Not(self._primary())
        if token == "(":
            node = self._expr()
            if self._next() != ")":
                raise ExprError("missing closing parenthesis")
            return node
        if token in ("0", "1"):
            return Const(token == "1")
        if token and (token[0].isalpha() or token[0] == "_"):
            return Var(token)
        raise ExprError(f"unexpected token {token!r}")


def parse(text: str) -> Node:
    """Parse ``text`` into an expression AST."""
    tokens = tokenize(text)
    if not tokens:
        raise ExprError("empty expression")
    return _Parser(tokens).parse()


def variables(node: Node) -> Tuple[str, ...]:
    """Variable names appearing in ``node``, in first-appearance order."""
    seen: Dict[str, None] = {}

    def walk(n: Node) -> None:
        if isinstance(n, Var):
            seen.setdefault(n.name, None)
        elif isinstance(n, Not):
            walk(n.operand)
        elif isinstance(n, Op):
            for operand in n.operands:
                walk(operand)

    walk(node)
    return tuple(seen)


def evaluate(node: Node, inputs: Sequence[str]) -> TruthTable:
    """Evaluate ``node`` into a truth table over ``inputs`` (index order)."""
    index = {name: i for i, name in enumerate(inputs)}
    if len(index) != len(inputs):
        raise ExprError("duplicate input names")
    n = len(inputs)

    def walk(n_: Node) -> TruthTable:
        if isinstance(n_, Var):
            if n_.name not in index:
                raise ExprError(f"unknown variable {n_.name!r}")
            return TruthTable.input_var(n, index[n_.name])
        if isinstance(n_, Const):
            return TruthTable.constant(n, n_.value)
        if isinstance(n_, Not):
            return ~walk(n_.operand)
        if isinstance(n_, Op):
            result = walk(n_.operands[0])
            for operand in n_.operands[1:]:
                other = walk(operand)
                if n_.kind == "&":
                    result = result & other
                elif n_.kind == "|":
                    result = result | other
                else:
                    result = result ^ other
            return result
        raise ExprError(f"unknown node {n_!r}")

    return walk(node)


def table_from_expr(text: str, inputs: Sequence[str] = ()) -> TruthTable:
    """One-shot parse + evaluate.

    When ``inputs`` is empty, the variables found in the expression are used
    in first-appearance order.
    """
    node = parse(text)
    names = tuple(inputs) or variables(node)
    return evaluate(node, names)
