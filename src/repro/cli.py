"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``
    Print the Section-2 function analysis (Figure 2/3, config coverage).
``flow DESIGN`` / ``run DESIGN``
    Run one benchmark design through both flows on one architecture.
    ``--json`` emits a machine-readable run summary; ``--trace`` records
    a run journal (see :mod:`repro.obs`).
``check [DESIGN ...]``
    Static verification: run the flow for the named designs (default:
    all shipped benchmarks) and audit every stage artifact with the
    :mod:`repro.check` rule families; ``--self`` lints the ``repro``
    source tree itself instead (determinism ``DT``, concurrency ``CC``,
    cache-key coherence ``CK``), ``--lockwatch JOURNAL`` reports
    lock-order inversions observed at runtime by the
    ``REPRO_LOCKWATCH=1`` sanitizer, and ``--keytrace JOURNAL`` audits
    per-stage options reads observed at runtime under
    ``REPRO_KEYTRACE=1`` against the static cache-key model.
    ``--json`` / ``--sarif`` emit machine-readable findings; exit
    status reflects ``--fail-on``.
``tables``
    Regenerate the paper's Tables 1 and 2 (plus the compaction summary).
``explore``
    Rank candidate PLB architectures with the granularity explorer.
``vias``
    Print the via-programmability cost comparison of both PLBs.
``profile``
    cProfile one (design, arch) flow cell and print the hottest
    functions — the quickest way to see where a flow run spends time.
``trace [JOURNAL]``
    Render a journal's span tree; ``--chrome`` also writes Chrome
    ``chrome://tracing`` trace-event JSON; ``--gantt`` renders the
    stage-graph scheduler timeline (one lane per worker).
``cache stats`` / ``cache gc``
    Inspect the content-addressed stage cache, or evict entries by age
    (``--max-age 7d``) and/or LRU order until under a size budget
    (``--max-size 500M``); ``--dry-run`` previews.
``stats [JOURNAL]``
    Print a journal's metric summaries (counters, gauges, histogram
    percentiles); ``--prometheus`` emits Prometheus exposition text.
``serve``
    Run the flow-as-a-service job server (REST API, persistent
    coalescing queue, graceful drain on SIGTERM) — see DESIGN.md §9.
``submit DESIGN`` / ``jobs``
    Thin HTTP clients for a running server: submit a job (``--wait``
    streams progress and prints the result) and list/inspect/cancel
    jobs.

All human narration goes through a shared :class:`Reporter`; the global
``--quiet`` flag silences progress text and ``--json`` mode guarantees
stdout carries nothing but the JSON payload — machine output is never
interleaved with human text.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

DESIGN_CHOICES = ["alu", "fpu", "netswitch", "firewire"]


class Reporter:
    """Routes CLI output so machine payloads stay clean.

    ``info`` is progress narration (silenced by ``--quiet`` and in JSON
    mode), ``out`` is the primary human-readable result (silenced in
    JSON mode, where the payload replaces it), and ``payload`` prints
    exactly one JSON document to stdout.
    """

    def __init__(self, quiet: bool = False, json_mode: bool = False):
        self.quiet = quiet
        self.json_mode = json_mode

    def info(self, text: str = "") -> None:
        if not self.quiet and not self.json_mode:
            print(text)

    def out(self, text: str = "") -> None:
        if not self.json_mode:
            print(text)

    def payload(self, obj) -> None:
        print(json.dumps(obj, indent=2, sort_keys=True, default=str))


def _cmd_analyze(_args: argparse.Namespace, reporter: Reporter) -> int:
    from .core.configs import coverage_summary
    from .flow.experiments import run_figure2

    reporter.out(run_figure2().format())
    reporter.out("\nGranular configuration coverage (Section 2.3):")
    for name, count in coverage_summary().items():
        reporter.out(f"  {name:8s} {count:3d} / 256")
    return 0


def _cmd_flow(args: argparse.Namespace, reporter: Reporter) -> int:
    from .flow.experiments import build_design
    from .flow.flow import run_design
    from .flow.options import FlowOptions

    from .check import CheckError

    options = FlowOptions(
        arch=args.arch, seed=args.seed, place_effort=args.effort,
        jobs=args.jobs, schedule=args.schedule,
        use_cache=not args.no_cache,
        observe=args.trace, check=args.check,
        sa_engine=args.sa_engine,
    )
    netlist = build_design(args.design, scale=args.scale)
    reporter.info(f"Running {args.design} (scale {args.scale}) on the "
                  f"{args.arch} architecture...")
    try:
        run = run_design(netlist, args.arch, options)
    except CheckError as exc:
        print(f"fatal check findings ({exc.context}):", file=sys.stderr)
        print(exc.report.format(), file=sys.stderr)
        return 1
    if args.json:
        reporter.payload(run.metrics() if args.metrics_only else run.summary())
    else:
        st = run.synthesis.stats
        reporter.out(f"  mapped: {st.n_instances} instances "
                     f"({st.nand2_equivalents:.0f} NAND2-eq), "
                     f"compaction {run.synthesis.compaction.reduction:.1%}")
        reporter.out(f"  flow a: die {run.flow_a.die_area:8.0f} um^2, "
                     f"avg slack {run.flow_a.average_slack:7.3f} ns")
        reporter.out(f"  flow b: die {run.flow_b.die_area:8.0f} um^2, "
                     f"avg slack {run.flow_b.average_slack:7.3f} ns, "
                     f"{run.flow_b.plbs_used} PLBs "
                     f"({run.flow_b.array_side} per side)")
        reporter.out(run.performance_report())
    if run.journal_path is not None:
        reporter.info(f"journal: {run.journal_path}")
    _write_keytrace_report(reporter)
    return 0


def _write_keytrace_report(reporter: Reporter) -> None:
    """Persist the keytrace journal after a traced run (CK005).

    Env-gated before the import so untraced runs never pay for
    ``repro.check``.
    """
    if os.environ.get("REPRO_KEYTRACE", "") != "1":  # check: allow(CK003)
        return
    from .check import keytrace

    reporter.info(f"keytrace journal: {keytrace.write_report()}")


def _cmd_check(args: argparse.Namespace, reporter: Reporter) -> int:
    from dataclasses import replace

    from .check import (
        REGISTRY,
        CheckError,
        Report,
        Severity,
        analyze_cache_keys,
        analyze_paths,
        check_design_run,
        filter_findings,
        findings_from_journal,
        findings_from_keytrace_journal,
        lint_paths,
        rule_catalog,
    )

    rules = rule_catalog()
    if args.list_rules:
        family_names = {
            "NL": "netlist structure",
            "LB": "library / realization consistency",
            "PK": "packing legality",
            "PL": "placement",
            "RT": "routing",
            "EQ": "equivalence",
            "DT": "codebase determinism (--self)",
            "CC": "codebase concurrency (--self / lockwatch)",
            "CK": "cache-key coherence (--self / keytrace)",
        }
        for family in REGISTRY.families():
            label = family_names.get(family, "")
            reporter.out(f"{family}  {label}".rstrip())
            for rule_obj in REGISTRY.for_family(family):
                ref = (
                    f"  [{rule_obj.paper_ref}]" if rule_obj.paper_ref else ""
                )
                reporter.out(
                    f"  {rule_obj.rule_id}  {rule_obj.severity.label:7s} "
                    f"{rule_obj.stage:11s} {rule_obj.description}{ref}"
                )
        return 0

    rule_ids = None
    if args.rules:
        raw_ids = {
            token.strip()
            for part in args.rules
            for token in part.split(",")
            if token.strip()
        }
        # Selection may name bare families (CC) as well as full ids.
        rule_ids = REGISTRY.validate_selection(raw_ids)

    report = Report()
    if args.lockwatch:
        reporter.info(f"reading lockwatch journal {args.lockwatch}...")
        try:
            observed = findings_from_journal(Path(args.lockwatch))
        except (CheckError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report.extend(filter_findings(observed, rule_ids))
    if args.keytrace:
        reporter.info(f"reading keytrace journal {args.keytrace}...")
        try:
            observed = findings_from_keytrace_journal(Path(args.keytrace))
        except (CheckError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report.extend(filter_findings(observed, rule_ids))
    if args.self:
        families = (
            {rid[:2] for rid in rule_ids} if rule_ids is not None else None
        )
        if families is None or "DT" in families:
            reporter.info("linting src/repro for determinism hazards...")
            report.extend(filter_findings(lint_paths(), rule_ids))
        if families is None or "CC" in families:
            reporter.info("analyzing src/repro lock discipline...")
            report.extend(filter_findings(analyze_paths(), rule_ids))
        if families is None or "CK" in families:
            reporter.info("auditing stage cache-key coherence...")
            report.extend(filter_findings(analyze_cache_keys(), rule_ids))
    if not args.self and not args.lockwatch and not args.keytrace:
        from .flow.experiments import build_design
        from .flow.flow import run_design
        from .flow.options import FlowOptions

        designs = args.design or DESIGN_CHOICES
        unknown = [d for d in designs if d not in DESIGN_CHOICES]
        if unknown:
            print(f"unknown design(s) {unknown} "
                  f"(choices: {DESIGN_CHOICES})", file=sys.stderr)
            return 2
        arches = (
            ["lut", "granular"] if args.arch == "all" else [args.arch]
        )
        for design in designs:
            netlist = build_design(design, scale=args.scale)
            for arch in arches:
                options = FlowOptions(
                    arch=arch, seed=args.seed, place_effort=args.effort,
                    use_cache=not args.no_cache,
                )
                reporter.info(f"checking {design}/{arch}...")
                run = run_design(netlist, arch, options)
                sub = check_design_run(run, stages=args.stage,
                                       rule_ids=rule_ids)
                report.extend(
                    replace(f, location=f"{design}/{arch}: {f.location}")
                    for f in sub
                )

    if args.json:
        reporter.payload(report.to_json())
    elif args.sarif:
        reporter.payload(report.to_sarif(rules))
    else:
        reporter.out(report.format())

    threshold = Severity.parse(args.fail_on)
    return 1 if report.at_least(threshold) else 0


def _cmd_tables(args: argparse.Namespace, reporter: Reporter) -> int:
    from .flow.experiments import (
        default_options,
        run_compaction_summary,
        run_matrix,
        run_table1,
        run_table2,
    )
    from .obs import journal as obs_journal

    from dataclasses import replace

    options = replace(
        default_options(), jobs=args.jobs, schedule=args.schedule,
        use_cache=not args.no_cache, observe=args.trace,
    )
    matrix = run_matrix(options, scale=args.scale, jobs=args.jobs)
    reporter.out(run_table1(matrix).format())
    reporter.out()
    reporter.out(run_table2(matrix).format())
    reporter.out()
    reporter.out(run_compaction_summary(matrix).format())
    if args.timings:
        reporter.out()
        reporter.out(matrix.performance_report())
    if obs_journal.last_journal() is not None:
        reporter.info(f"journal: {obs_journal.last_journal()}")
    _write_keytrace_report(reporter)
    return 0


def _cmd_explore(_args: argparse.Namespace, reporter: Reporter) -> int:
    from .core.explorer import GranularityExplorer, paper_candidates

    explorer = GranularityExplorer()
    reporter.out(
        f"{'candidate':16s} {'area':>7s} {'no-LUT':>7s} {'FA':>5s} {'score':>8s}"
    )
    for candidate, metrics, score in explorer.rank(paper_candidates()):
        reporter.out(
            f"{metrics.name:16s} {metrics.total_area:7.1f} "
            f"{metrics.lut_free_coverage:7d} "
            f"{str(metrics.full_adder_in_one_plb):>5s} {score:8.2f}"
        )
    return 0


def _cmd_vias(_args: argparse.Namespace, reporter: Reporter) -> int:
    from .core.vias import granularity_cost_comparison

    reporter.out("Via-programmability cost per PLB (paper Section 1's argument):")
    for name, stats in granularity_cost_comparison().items():
        reporter.out(f"  {name}:")
        reporter.out(
            f"    potential via sites:   {stats['potential_sites']:8.0f}")
        reporter.out(
            f"    via-site silicon area: {stats['via_site_area_um2']:8.1f} um^2 "
            f"({stats['site_area_fraction']:.1%} of the PLB)")
        reporter.out(
            f"    SRAM-bit equivalent:   {stats['sram_equivalent_area_um2']:8.1f} um^2 "
            f"({stats['sram_area_fraction']:.1f}x the PLB itself)")
    return 0


def _cmd_profile(args: argparse.Namespace, reporter: Reporter) -> int:
    import cProfile
    import pstats

    from .flow.cache import NullCache, StageCache
    from .flow.experiments import build_design
    from .flow.flow import run_design
    from .flow.options import FlowOptions

    options = FlowOptions(
        arch=args.arch, seed=args.seed, place_effort=args.effort,
        use_cache=args.cache,
    )
    # Profile the computation, not pickle loads: default to NullCache so
    # a warm stage cache can't hide the kernels being measured.
    cache = StageCache() if args.cache else NullCache()
    netlist = build_design(args.design, scale=args.scale)
    reporter.info(f"Profiling {args.design} (scale {args.scale}) on the "
                  f"{args.arch} architecture (cache {'on' if args.cache else 'off'})...")
    profiler = cProfile.Profile()
    profiler.enable()
    run_design(netlist, args.arch, options, cache=cache)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_cache(args: argparse.Namespace, reporter: Reporter) -> int:
    from .flow.cache import (
        collect_garbage,
        default_cache_dir,
        parse_age,
        parse_size,
        usage_summary,
    )

    root = Path(args.dir) if args.dir else default_cache_dir()
    if args.cache_command == "stats":
        summary = usage_summary(root)
        if args.json:
            reporter.payload(summary)
            return 0
        reporter.out(f"cache root: {summary['root']}")
        reporter.out(
            f"{summary['entries']} entries, {summary['bytes']} bytes"
        )
        for stage, bucket in summary["stages"].items():
            reporter.out(
                f"  {stage:10s} {bucket['entries']:6d} entries "
                f"{bucket['bytes']:12d} B"
            )
        return 0

    # gc
    max_bytes = max_age = None
    try:
        if args.max_size is not None:
            max_bytes = parse_size(args.max_size)
        if args.max_age is not None:
            max_age = parse_age(args.max_age)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if max_bytes is None and max_age is None:
        print("cache gc needs --max-size and/or --max-age "
              "(otherwise there is nothing to evict)", file=sys.stderr)
        return 2
    report = collect_garbage(
        root, max_bytes=max_bytes, max_age_seconds=max_age,
        dry_run=args.dry_run,
    )
    if args.json:
        reporter.payload({
            "root": str(root),
            "scanned": report.scanned,
            "removed": report.removed,
            "freed_bytes": report.freed_bytes,
            "kept": report.kept,
            "kept_bytes": report.kept_bytes,
            "errors": report.errors,
            "dry_run": report.dry_run,
        })
    else:
        reporter.out(report.format())
    return 0


def _resolve_journal(args: argparse.Namespace, reporter: Reporter):
    from .obs import journal as obs_journal

    if args.journal:
        path = Path(args.journal)
        if not path.exists():
            print(f"no journal at {path}", file=sys.stderr)
            return None
        return path
    path = obs_journal.latest_journal()
    if path is None:
        print(
            f"no journals under {obs_journal.journal_dir()} — record one "
            "with `repro run <design> --trace` (or REPRO_TRACE=1)",
            file=sys.stderr,
        )
    return path


def _read_journal_or_complain(path) -> Optional[list]:
    """Load a journal for trace/stats; one-line stderr on any defect."""
    from .obs import journal as obs_journal

    try:
        events = obs_journal.read_journal(path)
    except (ValueError, OSError) as exc:
        print(f"cannot read journal: {exc}", file=sys.stderr)
        return None
    if not events:
        print(f"journal {path} is empty — nothing to report",
              file=sys.stderr)
        return None
    return events


def _cmd_trace(args: argparse.Namespace, reporter: Reporter) -> int:
    from .obs import export

    path = _resolve_journal(args, reporter)
    if path is None:
        return 1
    events = _read_journal_or_complain(path)
    if events is None:
        return 1
    reporter.info(f"journal: {path}")
    if args.chrome:
        doc = export.chrome_trace(events)
        Path(args.chrome).write_text(json.dumps(doc), encoding="utf-8")
        reporter.info(
            f"chrome trace written to {args.chrome} "
            "(load in chrome://tracing or ui.perfetto.dev)"
        )
    if args.gantt:
        reporter.out(export.format_gantt(events))
    else:
        reporter.out(export.format_span_tree(events, max_depth=args.depth))
    return 0


def _cmd_stats(args: argparse.Namespace, reporter: Reporter) -> int:
    from .obs import export

    path = _resolve_journal(args, reporter)
    if path is None:
        return 1
    events = _read_journal_or_complain(path)
    if events is None:
        return 1
    reporter.info(f"journal: {path}")
    if args.prometheus:
        reporter.out(export.prometheus_text(events))
    else:
        reporter.out(export.format_stats(events))
    return 0


def _cmd_serve(args: argparse.Namespace, reporter: Reporter) -> int:
    from .serve.server import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        flow_jobs=args.flow_jobs,
        queue_limit=args.queue_limit,
        queue_dir=Path(args.queue_dir) if args.queue_dir else None,
    )
    # The listening line goes through ``out`` (not ``info``) so wrappers
    # can discover an ephemeral --port 0 even under --quiet tooling.
    return run_server(config, log=reporter.out)


def _serve_client(args: argparse.Namespace):
    from .serve.client import ServeClient

    return ServeClient(args.server)


def _cmd_submit(args: argparse.Namespace, reporter: Reporter) -> int:
    from .serve.client import ServeError

    client = _serve_client(args)
    options = {"seed": args.seed, "place_effort": args.effort}
    try:
        ticket = client.submit(
            kind=args.kind,
            design=args.design if args.kind != "tables" else None,
            arch=args.arch,
            scale=args.scale,
            options=options,
            priority=args.priority,
            timeout_seconds=args.timeout,
        )
    except ServeError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    reporter.info(f"submitted {ticket['id']} (state: {ticket['state']}"
                  + (f", coalesced into {ticket['coalesced_into']}"
                     if ticket.get("coalesced_into") else "") + ")")
    if not args.wait:
        if args.json:
            reporter.payload(ticket)
        else:
            reporter.out(ticket["id"])
        return 0

    def on_event(event: dict) -> None:
        attrs = event.get("attrs") or {}
        detail = " ".join(
            f"{k}={attrs[k]}" for k in sorted(attrs) if k != "id"
        )
        reporter.info(f"  {event.get('name')}: {detail}")

    try:
        job = client.wait(ticket["id"], timeout=args.timeout_wait,
                          on_event=on_event)
    except (ServeError, TimeoutError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if job["state"] != "done":
        print(f"job {job['id']} {job['state']}: {job.get('error') or ''}",
              file=sys.stderr)
        return 1
    result = job.get("result") or {}
    if args.json:
        # Exactly the payload `repro run --json --metrics-only` prints
        # for kind=flow: served and direct runs are byte-comparable.
        reporter.payload(result.get("metrics", result))
    else:
        for key in ("table1", "table2"):
            if result.get(key):
                reporter.out(result[key])
                reporter.out("")
        if not result.get("table1"):
            reporter.payload(result.get("metrics", result))
    return 0


def _cmd_jobs(args: argparse.Namespace, reporter: Reporter) -> int:
    from .serve.client import ServeError

    client = _serve_client(args)
    try:
        if args.cancel:
            outcome = client.cancel(args.cancel)
            reporter.out(f"{outcome['id']}: {outcome['state']}")
            return 0
        if args.job:
            job = client.job(args.job)
            reporter.payload(job)
            return 0
        jobs = client.jobs()
    except ServeError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        reporter.payload({"jobs": jobs})
        return 0
    if not jobs:
        reporter.out("no jobs")
        return 0
    for job in jobs:
        spec = job.get("spec", {})
        what = spec.get("design") or spec.get("kind")
        note = (f" -> {job['coalesced_into']}"
                if job.get("coalesced_into") else "")
        reporter.out(
            f"{job['id']}  {job['state']:9s} {spec.get('kind', '?'):6s} "
            f"{what or '?':9s} {spec.get('arch', '-'):8s} "
            f"prio={spec.get('priority', '?')}{note}"
        )
    return 0


def _add_flow_arguments(flow: argparse.ArgumentParser) -> None:
    flow.add_argument("design", choices=DESIGN_CHOICES)
    flow.add_argument("--arch", choices=["lut", "granular"], default="granular")
    flow.add_argument("--scale", type=float, default=0.5)
    flow.add_argument("--seed", type=int, default=0)
    flow.add_argument("--effort", type=float, default=0.2,
                      help="placement effort (1.0 = full anneal)")
    flow.add_argument("--jobs", type=int, default=1,
                      help="worker processes for matrix fan-out (1 = serial)")
    flow.add_argument("--schedule", choices=["cell", "stage"],
                      default="stage",
                      help="parallel decomposition: 'stage' pipelines "
                           "(cell, stage) tasks across workers, 'cell' "
                           "ships whole cells; results are bit-identical")
    flow.add_argument("--sa-engine", choices=["array", "object"],
                      default=None, dest="sa_engine",
                      help="annealer cost engine (default: $REPRO_SA_ENGINE "
                           "or 'array'; results are bit-identical)")
    flow.add_argument("--no-cache", action="store_true",
                      help="bypass the content-addressed stage cache")
    flow.add_argument("--trace", action="store_true",
                      help="record a run journal (spans, metrics, cache "
                           "events) under results/journals/")
    flow.add_argument("--json", action="store_true",
                      help="emit a machine-readable run summary on stdout")
    flow.add_argument("--metrics-only", action="store_true",
                      help="with --json: emit only the deterministic "
                           "metrics subset (no timings/cache/journal "
                           "fields) — byte-identical to a served job's "
                           "result")
    flow.add_argument("--check", action="store_true",
                      help="audit stage artifacts at every flow boundary; "
                           "a fatal finding aborts the run")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploring Logic Block Granularity "
                    "for Regular Fabrics' (DATE 2004)",
    )
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress narration (results only)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("analyze", help="Section-2 function analysis")

    flow = sub.add_parser("flow", help="run one design through the flow")
    _add_flow_arguments(flow)
    run = sub.add_parser(
        "run", help="alias of `flow`: run one design through the flow"
    )
    _add_flow_arguments(run)

    check = sub.add_parser(
        "check", help="static verification of flow artifacts / source tree"
    )
    check.add_argument("design", nargs="*", default=[],
                       help=f"designs to audit (default: all of "
                            f"{', '.join(DESIGN_CHOICES)})")
    check.add_argument("--arch", choices=["lut", "granular", "all"],
                       default="all")
    check.add_argument("--scale", type=float, default=0.5)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--effort", type=float, default=0.2,
                       help="placement effort (1.0 = full anneal)")
    check.add_argument("--no-cache", action="store_true",
                       help="bypass the content-addressed stage cache")
    check.add_argument("--stage", action="append", default=None,
                       metavar="STAGE",
                       help="restrict to one artifact family (repeatable): "
                            "netlist, library, placement, packing, routing, "
                            "equivalence")
    check.add_argument("--rules", action="append", default=None,
                       metavar="IDS",
                       help="comma-separated rule ids to report (repeatable)")
    check.add_argument("--self", action="store_true",
                       help="lint src/repro itself (determinism + "
                            "concurrency families) instead of auditing "
                            "flow artifacts")
    check.add_argument("--lockwatch", metavar="JOURNAL", default=None,
                       help="report observed lock-order inversions from a "
                            "lockwatch journal (written by a test run "
                            "under REPRO_LOCKWATCH=1)")
    check.add_argument("--keytrace", metavar="JOURNAL", default=None,
                       help="audit observed per-stage options reads from a "
                            "keytrace journal (written by a flow run "
                            "under REPRO_KEYTRACE=1) against the static "
                            "cache-key model")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule catalog and exit")
    check.add_argument("--fail-on", choices=["info", "warning", "error"],
                       default="error",
                       help="lowest severity that makes the exit status "
                            "non-zero (default: error)")
    output = check.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    output.add_argument("--sarif", action="store_true",
                        help="emit findings as SARIF 2.1.0 on stdout")

    tables = sub.add_parser("tables", help="regenerate Tables 1 and 2")
    tables.add_argument("--scale", type=float, default=0.5)
    tables.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the 8-cell matrix "
                             "(1 = serial; -1 = all CPUs)")
    tables.add_argument("--schedule", choices=["cell", "stage"],
                        default="stage",
                        help="parallel decomposition for --jobs > 1 "
                             "(default: stage; results are bit-identical)")
    tables.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed stage cache")
    tables.add_argument("--timings", action="store_true",
                        help="print per-stage wall times and cache stats")
    tables.add_argument("--trace", action="store_true",
                        help="record one merged run journal for the matrix")

    sub.add_parser("explore", help="rank candidate PLB architectures")
    sub.add_parser("vias", help="via-programmability cost comparison")

    profile = sub.add_parser(
        "profile", help="cProfile one (design, arch) flow cell"
    )
    profile.add_argument("design", choices=DESIGN_CHOICES)
    profile.add_argument("--arch", choices=["lut", "granular"], default="granular")
    profile.add_argument("--scale", type=float, default=0.4)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--effort", type=float, default=0.2,
                         help="placement effort (1.0 = full anneal)")
    profile.add_argument("--top", type=int, default=25,
                         help="number of profile rows to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=["cumulative", "tottime", "ncalls"],
                         help="pstats sort column")
    profile.add_argument("--cache", action="store_true",
                         help="profile with the stage cache enabled "
                              "(default runs every stage cold)")

    trace = sub.add_parser(
        "trace", help="render a run journal's span tree / Chrome trace"
    )
    trace.add_argument("journal", nargs="?", default=None,
                       help="journal path (default: latest in "
                            "results/journals/)")
    trace.add_argument("--chrome", metavar="PATH",
                       help="also write Chrome trace-event JSON to PATH")
    trace.add_argument("--depth", type=int, default=None,
                       help="limit the rendered span-tree depth")
    trace.add_argument("--gantt", action="store_true",
                       help="render the stage-graph scheduler Gantt "
                            "(one lane per worker) instead of the span tree")

    cache = sub.add_parser(
        "cache", help="inspect or garbage-collect the stage cache"
    )
    cache.add_argument("--dir", default=None, metavar="PATH",
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="per-stage entry counts and byte totals"
    )
    cache_stats.add_argument("--json", action="store_true",
                             help="emit the summary as JSON on stdout")
    cache_gc = cache_sub.add_parser(
        "gc", help="evict entries by age and/or LRU order"
    )
    cache_gc.add_argument("--max-size", default=None, metavar="SIZE",
                          help="keep at most SIZE bytes (suffixes K/M/G/T), "
                               "evicting least-recently-used entries first")
    cache_gc.add_argument("--max-age", default=None, metavar="AGE",
                          help="evict entries unused for AGE "
                               "(suffixes s/m/h/d/w; plain number = seconds)")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed, remove nothing")
    cache_gc.add_argument("--json", action="store_true",
                          help="emit the gc report as JSON on stdout")

    stats = sub.add_parser(
        "stats", help="print a run journal's metric summaries"
    )
    stats.add_argument("journal", nargs="?", default=None,
                       help="journal path (default: latest in "
                            "results/journals/)")
    stats.add_argument("--prometheus", action="store_true",
                       help="emit Prometheus exposition text instead")

    serve = sub.add_parser(
        "serve", help="run the flow-as-a-service job server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8157,
                       help="listen port (0 = ephemeral; the chosen port "
                            "is printed on startup)")
    serve.add_argument("--workers", type=int, default=1,
                       help="concurrent job executor threads")
    serve.add_argument("--flow-jobs", type=int, default=1,
                       dest="flow_jobs",
                       help="subprocess budget shared by running "
                            "'tables' jobs (1 = every job serial)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       dest="queue_limit",
                       help="max queued jobs before submissions get "
                            "429 + Retry-After (0 = reject any backlog)")
    serve.add_argument("--queue-dir", default=None, metavar="PATH",
                       help="queue journal root (default: "
                            "$REPRO_QUEUE_DIR or <cache root>/serve); "
                            "restarting on the same root resumes "
                            "unfinished jobs")

    submit = sub.add_parser(
        "submit", help="submit a job to a running repro server"
    )
    submit.add_argument("design", nargs="?", default=None,
                        help=f"design to run (one of "
                             f"{', '.join(DESIGN_CHOICES)}; omit for "
                             f"--kind tables)")
    submit.add_argument("--server", default="http://127.0.0.1:8157",
                        help="server base URL")
    submit.add_argument("--kind", choices=["flow", "tables", "check"],
                        default="flow")
    submit.add_argument("--arch", choices=["lut", "granular"],
                        default="granular")
    submit.add_argument("--scale", type=float, default=0.5)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--effort", type=float, default=0.2,
                        help="placement effort (1.0 = full anneal)")
    submit.add_argument("--priority", choices=["high", "normal", "low"],
                        default="normal")
    submit.add_argument("--timeout", type=float, default=None,
                        help="server-side job timeout in seconds")
    submit.add_argument("--wait", action="store_true",
                        help="stream progress and print the result")
    submit.add_argument("--timeout-wait", type=float, default=None,
                        dest="timeout_wait",
                        help="client-side limit for --wait, seconds")
    submit.add_argument("--json", action="store_true",
                        help="print the job ticket / result as JSON")

    jobs = sub.add_parser(
        "jobs", help="list, inspect, or cancel jobs on a repro server"
    )
    jobs.add_argument("job", nargs="?", default=None,
                      help="job id to show in full (default: list all)")
    jobs.add_argument("--server", default="http://127.0.0.1:8157",
                      help="server base URL")
    jobs.add_argument("--cancel", default=None, metavar="ID",
                      help="cancel the given job instead of listing")
    jobs.add_argument("--json", action="store_true",
                      help="emit the listing as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    reporter = Reporter(
        quiet=args.quiet, json_mode=bool(getattr(args, "json", False))
    )
    handlers = {
        "analyze": _cmd_analyze,
        "flow": _cmd_flow,
        "run": _cmd_flow,
        "check": _cmd_check,
        "tables": _cmd_tables,
        "explore": _cmd_explore,
        "vias": _cmd_vias,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
    }
    return handlers[args.command](args, reporter)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
