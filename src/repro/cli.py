"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``
    Print the Section-2 function analysis (Figure 2/3, config coverage).
``flow DESIGN``
    Run one benchmark design through both flows on one architecture.
``tables``
    Regenerate the paper's Tables 1 and 2 (plus the compaction summary).
``explore``
    Rank candidate PLB architectures with the granularity explorer.
``vias``
    Print the via-programmability cost comparison of both PLBs.
``profile``
    cProfile one (design, arch) flow cell and print the hottest
    functions — the quickest way to see where a flow run spends time.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_analyze(_args: argparse.Namespace) -> int:
    from .core.configs import coverage_summary
    from .flow.experiments import run_figure2

    print(run_figure2().format())
    print("\nGranular configuration coverage (Section 2.3):")
    for name, count in coverage_summary().items():
        print(f"  {name:8s} {count:3d} / 256")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from .flow.experiments import build_design
    from .flow.flow import run_design
    from .flow.options import FlowOptions

    options = FlowOptions(
        arch=args.arch, seed=args.seed, place_effort=args.effort,
        jobs=args.jobs, use_cache=not args.no_cache,
    )
    netlist = build_design(args.design, scale=args.scale)
    print(f"Running {args.design} (scale {args.scale}) on the "
          f"{args.arch} architecture...")
    run = run_design(netlist, args.arch, options)
    st = run.synthesis.stats
    print(f"  mapped: {st.n_instances} instances "
          f"({st.nand2_equivalents:.0f} NAND2-eq), "
          f"compaction {run.synthesis.compaction.reduction:.1%}")
    print(f"  flow a: die {run.flow_a.die_area:8.0f} um^2, "
          f"avg slack {run.flow_a.average_slack:7.3f} ns")
    print(f"  flow b: die {run.flow_b.die_area:8.0f} um^2, "
          f"avg slack {run.flow_b.average_slack:7.3f} ns, "
          f"{run.flow_b.plbs_used} PLBs "
          f"({run.flow_b.array_side} per side)")
    print(run.performance_report())
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .flow.experiments import (
        default_options,
        run_compaction_summary,
        run_matrix,
        run_table1,
        run_table2,
    )

    from dataclasses import replace

    options = replace(
        default_options(), jobs=args.jobs, use_cache=not args.no_cache
    )
    matrix = run_matrix(options, scale=args.scale, jobs=args.jobs)
    print(run_table1(matrix).format())
    print()
    print(run_table2(matrix).format())
    print()
    print(run_compaction_summary(matrix).format())
    if args.timings:
        print()
        print(matrix.performance_report())
    return 0


def _cmd_explore(_args: argparse.Namespace) -> int:
    from .core.explorer import GranularityExplorer, paper_candidates

    explorer = GranularityExplorer()
    print(f"{'candidate':16s} {'area':>7s} {'no-LUT':>7s} {'FA':>5s} {'score':>8s}")
    for candidate, metrics, score in explorer.rank(paper_candidates()):
        print(
            f"{metrics.name:16s} {metrics.total_area:7.1f} "
            f"{metrics.lut_free_coverage:7d} "
            f"{str(metrics.full_adder_in_one_plb):>5s} {score:8.2f}"
        )
    return 0


def _cmd_vias(_args: argparse.Namespace) -> int:
    from .core.vias import granularity_cost_comparison

    print("Via-programmability cost per PLB (paper Section 1's argument):")
    for name, stats in granularity_cost_comparison().items():
        print(f"  {name}:")
        print(f"    potential via sites:   {stats['potential_sites']:8.0f}")
        print(f"    via-site silicon area: {stats['via_site_area_um2']:8.1f} um^2 "
              f"({stats['site_area_fraction']:.1%} of the PLB)")
        print(f"    SRAM-bit equivalent:   {stats['sram_equivalent_area_um2']:8.1f} um^2 "
              f"({stats['sram_area_fraction']:.1f}x the PLB itself)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from .flow.cache import NullCache, StageCache
    from .flow.experiments import build_design
    from .flow.flow import run_design
    from .flow.options import FlowOptions

    options = FlowOptions(
        arch=args.arch, seed=args.seed, place_effort=args.effort,
        use_cache=args.cache,
    )
    # Profile the computation, not pickle loads: default to NullCache so
    # a warm stage cache can't hide the kernels being measured.
    cache = StageCache() if args.cache else NullCache()
    netlist = build_design(args.design, scale=args.scale)
    print(f"Profiling {args.design} (scale {args.scale}) on the "
          f"{args.arch} architecture (cache {'on' if args.cache else 'off'})...")
    profiler = cProfile.Profile()
    profiler.enable()
    run_design(netlist, args.arch, options, cache=cache)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploring Logic Block Granularity "
                    "for Regular Fabrics' (DATE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("analyze", help="Section-2 function analysis")

    flow = sub.add_parser("flow", help="run one design through the flow")
    flow.add_argument("design", choices=["alu", "fpu", "netswitch", "firewire"])
    flow.add_argument("--arch", choices=["lut", "granular"], default="granular")
    flow.add_argument("--scale", type=float, default=0.5)
    flow.add_argument("--seed", type=int, default=0)
    flow.add_argument("--effort", type=float, default=0.2,
                      help="placement effort (1.0 = full anneal)")
    flow.add_argument("--jobs", type=int, default=1,
                      help="worker processes for matrix fan-out (1 = serial)")
    flow.add_argument("--no-cache", action="store_true",
                      help="bypass the content-addressed stage cache")

    tables = sub.add_parser("tables", help="regenerate Tables 1 and 2")
    tables.add_argument("--scale", type=float, default=0.5)
    tables.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the 8-cell matrix "
                             "(1 = serial; -1 = all CPUs)")
    tables.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed stage cache")
    tables.add_argument("--timings", action="store_true",
                        help="print per-stage wall times and cache stats")

    sub.add_parser("explore", help="rank candidate PLB architectures")
    sub.add_parser("vias", help="via-programmability cost comparison")

    profile = sub.add_parser(
        "profile", help="cProfile one (design, arch) flow cell"
    )
    profile.add_argument("design", choices=["alu", "fpu", "netswitch", "firewire"])
    profile.add_argument("--arch", choices=["lut", "granular"], default="granular")
    profile.add_argument("--scale", type=float, default=0.4)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--effort", type=float, default=0.2,
                         help="placement effort (1.0 = full anneal)")
    profile.add_argument("--top", type=int, default=25,
                         help="number of profile rows to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=["cumulative", "tottime", "ncalls"],
                         help="pstats sort column")
    profile.add_argument("--cache", action="store_true",
                         help="profile with the stage cache enabled "
                              "(default runs every stage cold)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "flow": _cmd_flow,
        "tables": _cmd_tables,
        "explore": _cmd_explore,
        "vias": _cmd_vias,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
