"""repro.obs — structured tracing, metrics, and run journals.

The observability subsystem for the whole CAD flow:

* :mod:`repro.obs.core` — the zero-dependency tracing core (nested
  spans with monotonic timestamps, instantaneous points, and a
  process-local metrics registry of counters / gauges / fixed-bucket
  histograms).  Off by default with a no-op fast path; toggled via
  ``FlowOptions.observe``, ``--trace``, or ``REPRO_TRACE``.
* :mod:`repro.obs.journal` — JSONL run journals under
  ``results/journals/`` (override: ``REPRO_JOURNAL_DIR``), including
  the per-run environment fingerprint.  Parallel matrix runs merge
  worker events into one coherent journal.
* :mod:`repro.obs.export` — journal consumers: span-tree rendering,
  Chrome ``chrome://tracing`` trace-event JSON, metric summaries with
  histogram percentiles, and a Prometheus-style text dump.

Observation never changes computed results: runs with tracing on and
off are bit-identical (asserted by the test suite).
"""

from .core import (
    NOOP_SPAN,
    TRACE_ENV,
    absorb,
    active,
    begin,
    counter,
    drain,
    env_requested,
    gauge,
    observe,
    point,
    reset,
    span,
)
from .journal import (
    JOURNAL_DIR_ENV,
    environment_fingerprint,
    finalize,
    journal_dir,
    last_journal,
    latest_journal,
    read_journal,
    write_journal,
)
from .metrics import DEFAULT_BUCKETS, RATIO_BUCKETS, Histogram, Metrics

__all__ = [
    "NOOP_SPAN",
    "TRACE_ENV",
    "JOURNAL_DIR_ENV",
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "Histogram",
    "Metrics",
    "absorb",
    "active",
    "begin",
    "counter",
    "drain",
    "env_requested",
    "environment_fingerprint",
    "finalize",
    "gauge",
    "journal_dir",
    "last_journal",
    "latest_journal",
    "observe",
    "point",
    "read_journal",
    "reset",
    "span",
    "write_journal",
]
