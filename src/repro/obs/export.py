"""Journal exporters: span trees, Chrome traces, stats, Prometheus text.

All exporters work on the plain event list produced by
:func:`repro.obs.journal.read_journal`; none of them need the tracer to
be live.  Metrics events from different processes (pool workers) are
merged here — counters sum, gauges keep the latest value, histograms
fold bucket counts together.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .metrics import Histogram


# ----------------------------------------------------------------------
# Span tree
# ----------------------------------------------------------------------

class SpanNode:
    """One span (or point) with its children, for tree rendering."""

    __slots__ = ("event", "children")

    def __init__(self, event: Dict):
        self.event = event
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return self.event.get("name", "?")

    @property
    def duration(self) -> float:
        return self.event.get("dur", 0.0)


def build_span_tree(events: List[Dict]) -> List[SpanNode]:
    """Root spans (and orphan points) with children ordered by start time.

    Spans whose parent is missing from the journal (e.g. a worker
    fragment) become roots, so partial journals still render.
    """
    nodes: Dict[str, SpanNode] = {}
    ordered: List[Tuple[float, Dict]] = []
    for event in events:
        if event.get("ev") not in ("span", "point"):
            continue
        node = SpanNode(event)
        sid = event.get("sid")
        if sid:
            nodes[sid] = node
        ordered.append((event.get("ts", 0.0), event))
    roots: List[SpanNode] = []
    for _ts, event in ordered:
        sid = event.get("sid")
        node = nodes[sid] if sid else SpanNode(event)
        parent = event.get("parent")
        if parent and parent in nodes and parent != sid:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.event.get("ts", 0.0))
    roots.sort(key=lambda root: root.event.get("ts", 0.0))
    return roots


def _format_attrs(attrs: Dict) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def format_span_tree(
    events: List[Dict], max_depth: Optional[int] = None
) -> str:
    """Human-readable indented span tree with durations and attributes."""
    pids = sorted({e.get("pid") for e in events if "pid" in e})
    n_spans = sum(1 for e in events if e.get("ev") == "span")
    n_points = sum(1 for e in events if e.get("ev") == "point")
    lines = [
        f"{len(events)} events ({n_spans} spans, {n_points} points) "
        f"from {len(pids)} process(es): {pids}"
    ]

    def render(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        indent = "  " * depth
        attrs = node.event.get("attrs") or {}
        if node.event.get("ev") == "span":
            head = f"{indent}{node.name:<{max(1, 28 - 2 * depth)}s}"
            lines.append(
                f"{head} {node.duration * 1000.0:10.2f} ms"
                + (f"  {_format_attrs(attrs)}" if attrs else "")
            )
        else:
            lines.append(
                f"{indent}* {node.name}"
                + (f"  {_format_attrs(attrs)}" if attrs else "")
            )
        for child in node.children:
            render(child, depth + 1)

    for root in build_span_tree(events):
        render(root, 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace-event JSON (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------

def chrome_trace(events: List[Dict]) -> Dict:
    """The journal as a Chrome trace-event document.

    Spans become complete ("X") events, points become instants ("i");
    every process gets a metadata name.  Timestamps are microseconds
    relative to the earliest event, so multi-process journals line up on
    one timeline.
    """
    timestamps = [e["ts"] for e in events if "ts" in e]
    t0 = min(timestamps) if timestamps else 0.0
    trace_events: List[Dict] = []
    for pid in sorted({e.get("pid", 0) for e in events}):
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"repro pid {pid}"},
        })
    for event in events:
        kind = event.get("ev")
        base = {
            "name": event.get("name", kind),
            "pid": event.get("pid", 0),
            "tid": 0,
            "ts": (event.get("ts", t0) - t0) * 1e6,
            "args": event.get("attrs") or {},
        }
        if kind == "span":
            trace_events.append({
                **base, "ph": "X", "cat": "flow",
                "dur": event.get("dur", 0.0) * 1e6,
            })
        elif kind == "point":
            trace_events.append({**base, "ph": "i", "cat": "flow", "s": "t"})
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Scheduler Gantt (stage-graph runs)
# ----------------------------------------------------------------------

def format_gantt(events: List[Dict], width: int = 64) -> str:
    """ASCII Gantt chart of stage-graph scheduler tasks, one lane per worker.

    Uses the ``flow.<stage>`` spans tagged ``sched="stage"`` that the
    scheduler's workers record (:mod:`repro.flow.scheduler`); each bar is
    one (cell, stage) task positioned on the merged matrix timeline, so
    pipeline overlap — cell B's synthesis under cell A's physical stage —
    is directly visible.  Journals without scheduler spans (serial or
    cell-pool runs) get a short hint instead.
    """
    spans = [
        e for e in events
        if e.get("ev") == "span"
        and str(e.get("name", "")).startswith("flow.")
        and (e.get("attrs") or {}).get("sched") == "stage"
    ]
    if not spans:
        return (
            "no scheduler task spans in this journal — record one with "
            "`repro tables --jobs N --schedule stage --trace`"
        )
    t0 = min(e.get("ts", 0.0) for e in spans)
    t1 = max(e.get("ts", 0.0) + e.get("dur", 0.0) for e in spans)
    total = max(t1 - t0, 1e-9)
    lanes = sorted({e.get("pid", 0) for e in spans})
    lines = [
        f"scheduler Gantt: {len(spans)} stage tasks over {total:.3f} s "
        f"on {len(lanes)} worker(s)"
    ]
    for pid in lanes:
        lines.append(f"worker {pid}:")
        lane = sorted(
            (e for e in spans if e.get("pid") == pid),
            key=lambda e: e.get("ts", 0.0),
        )
        for e in lane:
            attrs = e.get("attrs") or {}
            label = (
                f"{attrs.get('design', '?')}/{attrs.get('arch', '?')}"
                f":{attrs.get('stage', '?')}"
            )
            if attrs.get("cached"):
                label += " (cached)"
            start = int((e.get("ts", t0) - t0) / total * width)
            start = min(start, width - 1)
            length = max(1, round(e.get("dur", 0.0) / total * width))
            bar = " " * start + "#" * min(length, width - start)
            lines.append(
                f"  {label:30s} |{bar:<{width}s}| "
                f"{e.get('dur', 0.0) * 1000.0:9.2f} ms"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Metrics merging + summaries
# ----------------------------------------------------------------------

def merge_counters(events: List[Dict]) -> Dict[str, int]:
    """Counter totals summed across all processes in the journal."""
    totals: Dict[str, int] = {}
    for event in events:
        if event.get("ev") == "counter":
            name = event["name"]
            totals[name] = totals.get(name, 0) + event.get("value", 0)
    return totals


def merge_gauges(events: List[Dict]) -> Dict[str, float]:
    """Gauge values, latest snapshot wins per name."""
    latest: Dict[str, Tuple[float, float]] = {}
    for event in events:
        if event.get("ev") == "gauge":
            ts = event.get("ts", 0.0)
            name = event["name"]
            if name not in latest or ts >= latest[name][0]:
                latest[name] = (ts, event.get("value", 0.0))
    return {name: value for name, (_ts, value) in latest.items()}


def merge_histograms(events: List[Dict]) -> Dict[str, Histogram]:
    """Histograms folded together across all processes in the journal."""
    merged: Dict[str, Histogram] = {}
    for event in events:
        if event.get("ev") != "hist":
            continue
        h = Histogram.from_event(event)
        if h.name in merged:
            merged[h.name].merge(h)
        else:
            merged[h.name] = h
    return merged


def format_stats(events: List[Dict]) -> str:
    """Counters, gauges, and histogram percentiles as a text report."""
    counters = merge_counters(events)
    gauges = merge_gauges(events)
    histograms = merge_histograms(events)
    lines: List[str] = []
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:32s} {counters[name]:>12d}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:32s} {gauges[name]:>12.4f}")
    if histograms:
        lines.append("histograms:")
        lines.append(
            f"  {'name':32s} {'count':>7s} {'mean':>10s} {'p50':>10s} "
            f"{'p90':>10s} {'p95':>10s} {'p99':>10s} {'max':>10s}"
        )
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:32s} {h.count:>7d} {h.mean:>10.4f} "
                f"{h.percentile(50):>10.4f} {h.percentile(90):>10.4f} "
                f"{h.percentile(95):>10.4f} {h.percentile(99):>10.4f} "
                f"{(h.max if h.count else 0.0):>10.4f}"
            )
    if not lines:
        lines.append("no metrics recorded in this journal")
    return "\n".join(lines)


_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def prometheus_text(events: List[Dict]) -> str:
    """The journal's metrics in Prometheus exposition format."""
    lines: List[str] = []
    for name, value in sorted(merge_counters(events).items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in sorted(merge_gauges(events).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, h in sorted(merge_histograms(events).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(h.bounds, h.counts):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += h.counts[-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {h.sum}")
        lines.append(f"{prom}_count {h.count}")
    return "\n".join(lines)
