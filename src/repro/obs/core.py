"""Zero-dependency tracing core: nested spans, points, and metrics.

Tracing is **off by default** and costs almost nothing while off: every
entry point checks a single module global and returns a shared no-op
object (``span``) or returns immediately (``point`` / ``counter`` /
``gauge`` / ``observe``).  It is toggled per run via
``FlowOptions.observe``, the ``--trace`` CLI flag, or the ``REPRO_TRACE``
environment variable — and, by contract, never perturbs computed
results: instrumentation only *reads* flow state, never touches any RNG
or feeds timing back into an algorithm.

Ownership model (single-process and ProcessPool-parallel runs share it):

* :func:`begin` activates tracing in the current process and returns
  ``True`` only for the outermost caller — that caller *owns* the trace
  and is responsible for finalizing it (usually via
  :func:`repro.obs.journal.finalize`, which writes the JSONL journal).
* Nested layers (``run_design`` inside ``run_cells``, stages inside a
  design run) call ``begin`` too; they get ``False`` and simply record.
* Pool workers own their own per-cell trace: :func:`drain` deactivates
  and returns the raw event list, which ships back to the parent over
  the existing ProcessPool result plumbing and is folded into the
  parent's buffer with :func:`absorb` — one coherent merged journal.
* A forked worker inherits the parent's active tracer state; the state
  carries its creating ``pid`` and is discarded on first touch from a
  different process, so inherited parent events are never duplicated.

Timestamps are monotonic within a process (``time.perf_counter``) and
anchored to the wall clock at activation, so spans from different
processes merge onto one coherent timeline.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence

from .metrics import Metrics

#: Environment toggle: any value other than "" / "0" enables tracing.
TRACE_ENV = "REPRO_TRACE"


def env_requested() -> bool:
    """True when ``REPRO_TRACE`` asks for tracing."""
    return os.environ.get(TRACE_ENV, "") not in ("", "0")


class _NoopSpan:
    """The shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _TraceState:
    """Per-process tracer: event buffer, span stack, metrics registry."""

    __slots__ = ("pid", "events", "stack", "wall0", "perf0", "metrics")

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.events: List[Dict] = []
        self.stack: List[str] = []
        self.wall0 = time.time()
        self.perf0 = time.perf_counter()
        self.metrics = Metrics()

    def now(self) -> float:
        """Monotonic seconds, anchored to the wall clock at activation."""
        return self.wall0 + (time.perf_counter() - self.perf0)


_STATE: Optional[_TraceState] = None

#: Process-wide span-id counter.  Deliberately *not* part of
#: ``_TraceState``: a worker process runs one trace per cell, and span
#: ids must stay unique across those traces (they are merged into one
#: journal), so the counter survives begin/drain cycles.  Forked
#: children inherit the current value, but ids embed the pid, so no
#: cross-process collision is possible.
_NEXT_SID = 0


def _next_sid() -> str:
    global _NEXT_SID
    _NEXT_SID += 1
    return f"{os.getpid()}:{_NEXT_SID}"


def _state() -> Optional[_TraceState]:
    """The live tracer state, or None.

    Discards state inherited across ``fork``: a pool worker starts with a
    copy of the parent's active tracer, whose events belong to (and stay
    in) the parent — the worker must begin its own trace.
    """
    global _STATE
    s = _STATE
    if s is not None and s.pid != os.getpid():
        _STATE = None
        return None
    return s


def active() -> bool:
    return _state() is not None


def reset() -> None:
    """Hard-deactivate, dropping any buffered events (test isolation)."""
    global _STATE
    _STATE = None


def begin(**meta: Any) -> bool:
    """Activate tracing in this process.

    Returns ``True`` if this call activated it (the caller owns the trace
    and must :func:`drain` it or finalize a journal), ``False`` if a
    tracer was already live (record-only mode for nested layers).
    """
    global _STATE
    if _state() is not None:
        return False
    _STATE = _TraceState()
    # Deferred import: journal imports this module at top level.
    from .journal import environment_fingerprint

    attrs: Dict[str, Any] = dict(environment_fingerprint())
    attrs.update(meta)
    _STATE.events.append(
        {"ev": "meta", "pid": _STATE.pid, "ts": _STATE.now(), "attrs": attrs}
    )
    return True


def drain() -> List[Dict]:
    """Deactivate and return every event plus a final metrics snapshot.

    Used by pool workers to ship their per-cell trace back to the parent
    (and by :func:`repro.obs.journal.finalize` to collect the journal).
    Returns ``[]`` when tracing was not active.
    """
    global _STATE
    s = _state()
    if s is None:
        return []
    _STATE = None
    events = s.events
    events.extend(s.metrics.snapshot_events(s.pid, s.now()))
    return events


def absorb(events: Sequence[Dict]) -> None:
    """Fold events recorded elsewhere (a worker) into the live buffer."""
    s = _state()
    if s is not None:
        s.events.extend(events)


class Span:
    """A live span: records one ``span`` event with duration on exit."""

    __slots__ = ("name", "attrs", "sid", "parent", "start", "_st")

    def __init__(self, st: _TraceState, name: str, attrs: Dict[str, Any]):
        self._st = st
        self.name = name
        self.attrs = attrs
        self.sid = ""
        self.parent: Optional[str] = None
        self.start = 0.0

    def __enter__(self) -> "Span":
        st = self._st
        self.sid = _next_sid()
        self.parent = st.stack[-1] if st.stack else None
        st.stack.append(self.sid)
        self.start = st.now()
        return self

    def __exit__(self, *exc: Any) -> bool:
        st = self._st
        end = st.now()
        if st.stack and st.stack[-1] == self.sid:
            st.stack.pop()
        event: Dict[str, Any] = {
            "ev": "span", "name": self.name, "sid": self.sid, "pid": st.pid,
            "ts": self.start, "dur": end - self.start,
        }
        if self.parent is not None:
            event["parent"] = self.parent
        if self.attrs:
            event["attrs"] = self.attrs
        st.events.append(event)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. cache hit/miss)."""
        self.attrs.update(attrs)


def span(name: str, **attrs: Any):
    """A context manager timing a nested span (no-op while tracing is off)."""
    st = _state()
    if st is None:
        return NOOP_SPAN
    return Span(st, name, attrs)


def point(name: str, **attrs: Any) -> None:
    """Record an instantaneous event under the current span."""
    st = _state()
    if st is None:
        return
    event: Dict[str, Any] = {"ev": "point", "name": name, "pid": st.pid,
                             "ts": st.now()}
    if st.stack:
        event["parent"] = st.stack[-1]
    if attrs:
        event["attrs"] = attrs
    st.events.append(event)


def counter(name: str, n: int = 1) -> None:
    """Increment a named counter (no-op while tracing is off)."""
    st = _state()
    if st is not None:
        st.metrics.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    """Set a named gauge (no-op while tracing is off)."""
    st = _state()
    if st is not None:
        st.metrics.gauge(name).set(value)


def observe(
    name: str, value: float, bounds: Optional[Sequence[float]] = None
) -> None:
    """Record a histogram observation (no-op while tracing is off)."""
    st = _state()
    if st is not None:
        st.metrics.histogram(name, bounds).observe(value)
