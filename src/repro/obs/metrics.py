"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`Metrics` registry is owned by the tracer state in
:mod:`repro.obs.core`; instrumented code never touches it directly but
goes through ``obs.counter`` / ``obs.gauge`` / ``obs.observe``, which are
no-ops while tracing is off.  At journal-finalize time the registry is
snapshotted into plain JSON events, so readers (``repro stats``, the
Prometheus dump, the benchmark percentile report) only ever deal with
the serialized form — histograms can be merged across worker processes
by summing bucket counts.

Everything here is zero-dependency stdlib Python.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-oriented, geometric).
#: The final implicit bucket is +inf; exact min/max are tracked alongside
#: so percentile estimates are clamped to observed values.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)

#: Bucket bounds for ratio-valued observations (accept rates etc.).
RATIO_BUCKETS: Tuple[float, ...] = tuple(i / 20.0 for i in range(1, 21))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``bounds`` are non-cumulative upper bounds; observations above the
    last bound land in an implicit overflow bucket.  Percentiles are
    estimated by linear interpolation inside the containing bucket and
    clamped to the observed [min, max] range.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds or DEFAULT_BUCKETS)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile (p in [0, 100])."""
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max) if hi != float("inf") else self.max
                if hi <= lo:
                    return max(self.min, min(self.max, hi))
                frac = (rank - cumulative) / n
                return max(self.min, min(self.max, lo + frac * (hi - lo)))
            cumulative += n
        return self.max

    # -- serialized form -------------------------------------------------
    def to_event(self) -> Dict:
        return {
            "ev": "hist",
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    @classmethod
    def from_event(cls, event: Dict) -> "Histogram":
        h = cls(event["name"], event["bounds"])
        h.counts = list(event["counts"])
        h.count = event["count"]
        h.sum = event["sum"]
        h.min = event["min"] if event["count"] else float("inf")
        h.max = event["max"] if event["count"] else float("-inf")
        return h

    def merge(self, other: "Histogram") -> None:
        """Fold another snapshot in (e.g. the same metric from a worker)."""
        if other.bounds == self.bounds:
            for i, n in enumerate(other.counts):
                self.counts[i] += n
        else:  # mismatched layouts: keep exact aggregates, re-bucket coarsely
            mid_ok = other.count > 0
            if mid_ok:
                self.counts[bisect.bisect_left(self.bounds, other.mean)] += other.count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class Metrics:
    """A process-local registry of named counters, gauges, histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def snapshot_events(self, pid: int, ts: float) -> List[Dict]:
        """The registry as plain JSON-ready events (journal tail)."""
        events: List[Dict] = []
        for name in sorted(self.counters):
            events.append({
                "ev": "counter", "name": name, "pid": pid, "ts": ts,
                "value": self.counters[name].value,
            })
        for name in sorted(self.gauges):
            events.append({
                "ev": "gauge", "name": name, "pid": pid, "ts": ts,
                "value": self.gauges[name].value,
            })
        for name in sorted(self.histograms):
            event = self.histograms[name].to_event()
            event["pid"] = pid
            event["ts"] = ts
            events.append(event)
        return events
