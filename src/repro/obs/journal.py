"""Run journals: JSONL event streams under ``results/journals/``.

A journal is the serialized form of one trace: every span, point, cache
event, and final metrics snapshot from a run (including events shipped
back from pool workers), one JSON object per line.  Journals are plain
data — readable with a text editor, greppable, and consumed by the
``repro trace`` / ``repro stats`` exporters in :mod:`repro.obs.export`.

The journal directory defaults to ``results/journals`` relative to the
working directory and is overridden with ``REPRO_JOURNAL_DIR``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from . import core

JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

#: The last journal written by this process (shown by the CLI).
_LAST: Optional[Path] = None


def journal_dir() -> Path:
    """``$REPRO_JOURNAL_DIR`` or ``results/journals``."""
    override = os.environ.get(JOURNAL_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("results") / "journals"


def environment_fingerprint() -> Dict:
    """Reproducibility context recorded in every journal's meta event."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a soft dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "argv": list(sys.argv),
        "env": {
            k: v for k, v in sorted(os.environ.items())
            if k.startswith("REPRO_")
        },
    }


def write_journal(
    events: List[Dict], label: str = "run", directory: Optional[Path] = None
) -> Path:
    """Write events as one JSONL file; returns (and remembers) its path."""
    global _LAST
    root = Path(directory) if directory is not None else journal_dir()
    root.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    base = f"{stamp}-{label}-{os.getpid()}"
    path = root / f"{base}.jsonl"
    n = 0
    while path.exists():  # same second, same pid: disambiguate
        n += 1
        path = root / f"{base}-{n}.jsonl"
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
    _LAST = path
    return path


def read_journal(path) -> List[Dict]:
    """Parse a JSONL journal back into its event list."""
    events: List[Dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a valid journal line: {exc}"
                ) from exc
    return events


def tail_journal(path, offset: int = 0) -> Tuple[List[Dict], int]:
    """Incrementally read a growing JSONL journal.

    Returns ``(events, new_offset)``: every complete event line that
    starts at or after byte ``offset``, plus the offset to resume from.
    A partially written final line (a writer mid-append) is left for the
    next call, and a malformed complete line is skipped rather than
    raised — a live tail must tolerate a torn or corrupt write without
    killing the stream.  A missing file yields ``([], offset)``, so
    tailing can begin before the journal exists.

    This is the primitive behind job progress streaming in
    :mod:`repro.serve`: the server appends obs-format events per job and
    the ``/v1/jobs/{id}/events`` endpoint serves them from ``offset``.
    """
    events: List[Dict] = []
    try:
        with Path(path).open("rb") as handle:
            handle.seek(offset)
            while True:
                line = handle.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    break  # torn tail: re-read it once the writer finishes
                offset += len(line)
                text = line.strip()
                if not text:
                    continue
                try:
                    events.append(json.loads(text))
                except json.JSONDecodeError:
                    continue
    except OSError:
        return events, offset
    return events, offset


def latest_journal(directory: Optional[Path] = None) -> Optional[Path]:
    """The most recently modified journal, or None."""
    root = Path(directory) if directory is not None else journal_dir()
    if not root.is_dir():
        return None
    candidates = sorted(
        root.glob("*.jsonl"), key=lambda p: (p.stat().st_mtime, p.name)
    )
    return candidates[-1] if candidates else None


def last_journal() -> Optional[Path]:
    """The journal most recently written by this process, if any."""
    return _LAST


def finalize(label: str = "run", directory: Optional[Path] = None) -> Optional[Path]:
    """Drain the live trace and write it as one journal.

    Only the trace owner (the caller whose :func:`repro.obs.core.begin`
    returned True) should call this.  Returns None when tracing was not
    active (nothing to write).
    """
    events = core.drain()
    if not events:
        return None
    return write_journal(events, label=label, directory=directory)
