"""Power estimation substrate (extension beyond the paper's evaluation)."""

from .activity import ActivityReport, estimate_activity, table_output_probability
from .power import FF_PER_UNIT_LOAD, VDD, PowerReport, estimate_power

__all__ = [
    "ActivityReport",
    "estimate_activity",
    "table_output_probability",
    "FF_PER_UNIT_LOAD",
    "VDD",
    "PowerReport",
    "estimate_power",
]
