"""Power estimation for flow results (an extension beyond the paper).

The paper's companion work ([10]) compares VPGA fabrics on delay, power
and area; this module supplies the power axis with the standard static
model:

* **dynamic** power per net: ``0.5 * alpha * C * Vdd^2 * f`` where
  ``alpha`` is the estimated toggle rate, ``C`` the net load (pin caps +
  wire cap from the flow's wire model);
* **clock** power: every DFF's clock pin toggles each cycle;
* **leakage**: proportional to instantiated cell area (flow a) or to the
  full PLB array area (flow b — unused via-patterned logic still leaks,
  one of the regular-fabric costs worth quantifying).

Units: capacitance in unit-inverter loads (converted via
``FF_PER_UNIT_LOAD``), Vdd and frequency from the options; results in mW.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cells.characterize import TimingLibrary
from ..netlist.core import Netlist
from ..timing.wires import WireModel, zero_wire_model
from .activity import ActivityReport, estimate_activity

#: Femto-farads per normalized unit-inverter load (0.18um-class).
FF_PER_UNIT_LOAD = 4.0
#: Supply voltage, volts (0.18um nominal).
VDD = 1.8
#: Leakage power density, mW per um^2 (0.18um-era leakage is small).
LEAKAGE_MW_PER_UM2 = 2.0e-6
#: DFF clock-pin capacitance, unit loads.
CLOCK_PIN_CAP = 1.0


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown for one implementation (mW)."""

    dynamic: float
    clock: float
    leakage: float
    frequency_mhz: float

    @property
    def total(self) -> float:
        return self.dynamic + self.clock + self.leakage


def _net_load(
    netlist: Netlist, timing: TimingLibrary, wires: WireModel, net: str
) -> float:
    load = wires.capacitance(net)
    for sink_name, pin in netlist.nets[net].sinks:
        sink = netlist.instances[sink_name]
        if sink.cell.name in timing.library:
            load += timing.pin_cap(sink.cell.name, pin)
        else:
            load += max(sink.cell.input_caps.values())
    return load


def estimate_power(
    netlist: Netlist,
    timing: TimingLibrary,
    wires: Optional[WireModel] = None,
    frequency_mhz: float = 200.0,
    leakage_area_um2: Optional[float] = None,
    activity: Optional[ActivityReport] = None,
) -> PowerReport:
    """Estimate total power for a placed/routed netlist.

    ``leakage_area_um2`` defaults to the sum of instantiated cell areas;
    flow-b callers pass the PLB-array die area instead.
    """
    wires = wires if wires is not None else zero_wire_model()
    activity = activity or estimate_activity(netlist)
    freq_hz = frequency_mhz * 1e6

    dynamic_w = 0.0
    for net in netlist.nets:
        alpha = activity.activity(net)
        if alpha <= 0.0:
            continue
        cap_ff = FF_PER_UNIT_LOAD * _net_load(netlist, timing, wires, net)
        dynamic_w += 0.5 * alpha * cap_ff * 1e-15 * VDD * VDD * freq_hz

    n_dffs = sum(1 for _ in netlist.sequential_instances())
    clock_cap_ff = FF_PER_UNIT_LOAD * CLOCK_PIN_CAP * n_dffs
    clock_w = clock_cap_ff * 1e-15 * VDD * VDD * freq_hz  # alpha = 1 both edges

    if leakage_area_um2 is None:
        leakage_area_um2 = sum(
            inst.cell.area for inst in netlist.instances.values()
        )
    leakage_mw = LEAKAGE_MW_PER_UM2 * leakage_area_um2

    return PowerReport(
        dynamic=dynamic_w * 1e3,
        clock=clock_w * 1e3,
        leakage=leakage_mw,
        frequency_mhz=frequency_mhz,
    )
