"""Switching-activity estimation by probability propagation.

Classic static activity analysis: every net gets a *signal probability*
(chance of being 1) and a *transition density* (expected toggles per
cycle).  Probabilities propagate through each instance's configuration
truth table assuming spatially independent inputs; under the standard
temporal-independence model the toggle rate of a net with probability
``p`` is ``2 p (1 - p)``.

Primary inputs default to ``p = 0.5``; DFF outputs take the probability
of their data input, solved by fixed-point iteration over the sequential
loop (damped, always convergent in practice for these netlists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..logic.truthtable import TruthTable
from ..netlist.core import Netlist

#: Fixed-point iteration limit and tolerance for sequential loops.
MAX_ITERATIONS = 64
TOLERANCE = 1e-6


@dataclass(frozen=True)
class ActivityReport:
    """Per-net signal probabilities and toggle rates."""

    probability: Mapping[str, float]
    toggle_rate: Mapping[str, float]

    def activity(self, net: str) -> float:
        return self.toggle_rate.get(net, 0.0)


def table_output_probability(table: TruthTable, input_probs) -> float:
    """P(output = 1) for independent inputs with given 1-probabilities."""
    total = 0.0
    for row in range(1 << table.n_inputs):
        if not (table.mask >> row) & 1:
            continue
        p_row = 1.0
        for i, p in enumerate(input_probs):
            p_row *= p if (row >> i) & 1 else (1.0 - p)
        total += p_row
    return total


def estimate_activity(
    netlist: Netlist,
    input_probability: float = 0.5,
    input_overrides: Optional[Mapping[str, float]] = None,
) -> ActivityReport:
    """Estimate probabilities and toggle rates for every net."""
    overrides = dict(input_overrides or {})
    prob: Dict[str, float] = {}
    for name in netlist.inputs:
        prob[name] = overrides.get(name, input_probability)

    dffs = list(netlist.sequential_instances())
    for dff in dffs:
        prob[dff.output_net] = 0.5  # initial guess

    order = netlist.topological_order()

    def propagate() -> None:
        for inst in order:
            inputs = [prob[n] for n in inst.input_nets()]
            assert inst.config is not None
            prob[inst.output_net] = table_output_probability(inst.config, inputs)

    propagate()
    for _ in range(MAX_ITERATIONS):
        worst = 0.0
        for dff in dffs:
            new = prob[dff.pin_nets["D"]]
            old = prob[dff.output_net]
            # Damped update keeps oscillating loops (toggle registers)
            # convergent at their long-run average.
            updated = 0.5 * (old + new)
            worst = max(worst, abs(updated - old))
            prob[dff.output_net] = updated
        if worst < TOLERANCE:
            break
        propagate()

    toggle = {net: 2.0 * p * (1.0 - p) for net, p in prob.items()}
    return ActivityReport(probability=dict(prob), toggle_rate=toggle)
