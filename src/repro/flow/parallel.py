"""Parallel evaluation-matrix runner.

The paper's whole evaluation is a 4-designs x 2-PLB-architectures matrix
(each cell runs flows a and b).  Cells are mutually independent — every
stochastic stage takes an explicit per-run seed, and no state is shared
between cells — so they fan out over a ``ProcessPoolExecutor`` without
affecting results: ``jobs=1`` runs the exact serial path, and any
``jobs>1`` produces bit-identical tables because each cell's computation
never depends on which worker (or how many) executed it.

Workers also share the content-addressed stage cache
(:mod:`repro.flow.cache`): entries are written atomically, so concurrent
workers can populate and reuse it safely.

When observation is on (``FlowOptions.observe`` / ``REPRO_TRACE``), each
worker records its own per-cell trace and ships the raw event list back
to the parent alongside the :class:`DesignRun` — the existing pool
result plumbing, no extra channels — where the fragments merge, in cell
order, into one coherent journal for the whole matrix.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import core as _obs
from ..obs import journal as _journal
from .flow import DesignRun
from .options import FlowOptions


def _observing(options: FlowOptions) -> bool:
    return options.observe or _obs.env_requested()


def _run_cell(
    cell: Tuple[str, str], scale: float, options: FlowOptions
) -> Tuple[Tuple[str, str], DesignRun, Optional[List[dict]]]:
    """Worker body: build one design and run both flows on one arch.

    Imports are deferred so the module stays importable without pulling
    the whole flow in (and so forked workers resolve them lazily).

    In a pool worker with observation on, this call owns the process's
    trace: the third tuple element carries the drained event list back
    to the parent.  Called in-process under an already-active parent
    trace, events land in the parent buffer directly and the third
    element is None.
    """
    from .experiments import build_design
    from .flow import run_design

    own_trace = _observing(options) and _obs.begin()
    design, arch = cell
    netlist = build_design(design, scale)
    run = run_design(netlist, arch, options)
    events = _obs.drain() if own_trace else None
    return cell, run, events


def _warm_worker(arch_names: Tuple[str, ...]) -> None:
    """Pool initializer: preload realization tables in each worker.

    The tables are persisted through the content-addressed stage cache
    (see :func:`repro.synth.realize.table_for_cells`), so a worker loads
    the finished pickle — or, on a truly cold cache, builds and persists
    it once for its siblings — before its first cell instead of paying
    the derivation inside every cell's synthesis stage.  Best-effort:
    custom architectures registered only in the parent are skipped.
    """
    from ..synth.realize import baseline_table, compaction_table

    for arch in arch_names:
        try:
            baseline_table(arch)
            compaction_table(arch)
        except ValueError:
            continue


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` -> 1, negatives -> CPUs."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


SCHEDULES = ("cell", "stage")


def run_cells(
    cells: Sequence[Tuple[str, str]],
    scale: float,
    options: FlowOptions,
    jobs: Optional[int] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> Dict[Tuple[str, str], DesignRun]:
    """Run every (design, arch) cell, serially or across processes.

    ``options.schedule`` picks the parallel decomposition when
    ``jobs > 1``: ``"stage"`` (default) hands the matrix to the
    stage-graph scheduler (:mod:`repro.flow.scheduler`), which pipelines
    (cell, stage) tasks across workers; ``"cell"`` is the legacy pool
    that ships one whole cell per worker.  ``jobs <= 1`` is always the
    exact serial path.  All three produce bit-identical results — the
    schedule only changes wall-clock.

    The result dict is keyed by cell in the order given, regardless of
    worker completion order, so downstream table formatting is identical
    for any job count.

    With observation on, the whole matrix produces *one* merged journal:
    worker event fragments are absorbed in a deterministic order (cell
    order for the cell pool, task order for the stage graph) and written
    by the parent at the end.

    ``cancel`` is polled between cells (serial path) or between task
    dispatches (stage graph); once it returns True the run raises
    :class:`~repro.flow.scheduler.SchedulerInterrupted` after an orderly
    shutdown.  Completed stages are already in the stage cache, so a
    rerun of the same matrix resumes warm.  (The legacy cell pool has no
    mid-cell hook; ``repro.serve`` always cancels via the serial or
    stage-graph paths.)
    """
    jobs = resolve_jobs(jobs)
    schedule = options.schedule
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r} (choices: {SCHEDULES})"
        )
    own_trace = _observing(options) and _obs.begin()
    runs: Dict[Tuple[str, str], DesignRun] = {}
    try:
        if jobs <= 1 or (schedule == "cell" and len(cells) <= 1):
            from .scheduler import SchedulerInterrupted

            with _obs.span("run_cells", cells=len(cells), jobs=1):
                for index, cell in enumerate(cells):
                    if cancel is not None and cancel():
                        raise SchedulerInterrupted(
                            done=index, pending=len(cells) - index
                        )
                    runs[cell] = _run_cell(cell, scale, options)[1]
        elif schedule == "stage":
            from .scheduler import run_stage_graph

            with _obs.span(
                "run_cells", cells=len(cells), jobs=jobs, schedule="stage"
            ):
                runs = run_stage_graph(cells, scale, options, jobs,
                                       cancel=cancel)
        else:
            arch_names = tuple(
                dict.fromkeys(arch for _design, arch in cells)
            )
            with _obs.span(
                "run_cells", cells=len(cells), jobs=jobs, schedule="cell"
            ):
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(cells)),
                    initializer=_warm_worker,
                    initargs=(arch_names,),
                ) as pool:
                    for cell, run, events in pool.map(
                        _run_cell, cells, [scale] * len(cells),
                        [options] * len(cells),
                    ):
                        runs[cell] = run
                        if events:
                            _obs.absorb(events)
    finally:
        # Finalize even on a failed run so partial traces (e.g. a
        # StageFailure with some cells completed) still yield a journal.
        if own_trace:
            _journal.finalize(f"matrix-{len(cells)}cells")
    return {cell: runs[cell] for cell in cells}
