"""The VPGA design flow (paper Figure 6).

::

    RTL (design generators)
      |  synthesis + technology mapping        (repro.synth.techmap)
      |  regularity-driven logic compaction    (repro.synth.compaction)
      |  physical synthesis + ASIC placement   (repro.place)
      |-- flow a: ASIC routing + extraction + STA          -> FlowResult
      |-- flow b: packing into the PLB array (quadrisection,
      |           iterative with physical synthesis), then
      |           ASIC-style routing over the array + STA  -> FlowResult

    "Flow a is obtained if we skip the Packing step ... essentially the
    standard cell ASIC flow using a library which comprises of cells that
    make up each PLB.  Flow b ... produces a regular PLB array with
    ASIC-style custom routing."
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cells.characterize import TimingLibrary, characterize_library
from ..cells.library import Library
from ..core.plb import PLBArchitecture, granular_plb, lut_plb
from ..netlist.core import Netlist
from ..netlist.stats import NetlistStats, gather
from ..pack.iterative import PackedDesign, run_packing_loop
from ..place.physical_synthesis import PhysicalResult, run_physical_synthesis
from ..route.extract import route_and_extract
from ..route.grid import RoutingGrid
from ..route.pathfinder import RoutingResult
from ..synth.compaction import CompactionReport, compact_to_fixpoint
from ..synth.from_netlist import CombCore, extract_core
from ..synth.optimize import optimize
from ..synth.techmap import map_core
from ..timing.sta import TimingReport, analyze
from .options import FlowOptions

#: Deep mapped netlists recurse through reconstruction helpers.
_RECURSION_LIMIT = 100_000


#: Custom architectures registered for flow runs, by name.
_CUSTOM_ARCHITECTURES: Dict[str, PLBArchitecture] = {}


def register_architecture(arch: PLBArchitecture) -> PLBArchitecture:
    """Make a custom PLB architecture resolvable by name in the flow.

    Together with :func:`repro.core.plb.custom_plb` this enables the
    paper's proposed future work: pushing arbitrary PLB candidates
    through the complete Figure-6 flow.
    """
    _CUSTOM_ARCHITECTURES[arch.name] = arch
    return arch


def architecture_of(name) -> PLBArchitecture:
    if isinstance(name, PLBArchitecture):
        return name
    if name == "lut":
        return lut_plb()
    if name == "granular":
        return granular_plb()
    if name in _CUSTOM_ARCHITECTURES:
        return _CUSTOM_ARCHITECTURES[name]
    raise ValueError(f"unknown architecture {name!r}")


@dataclass
class SynthesisResult:
    """Mapped + compacted netlist and its provenance."""

    netlist: Netlist
    arch: PLBArchitecture
    library: Library
    timing_library: TimingLibrary
    compaction: CompactionReport
    pre_compaction_stats: NetlistStats
    stats: NetlistStats


@dataclass
class FlowResult:
    """One flow endpoint (flow a or flow b) for one design/architecture."""

    flow: str                     # "a" | "b"
    arch_name: str
    netlist_stats: NetlistStats
    die_area: float               # um^2
    timing: TimingReport
    routing: RoutingResult
    packing_displacement: float = 0.0
    plbs_used: int = 0
    array_side: int = 0

    @property
    def average_slack(self) -> float:
        return self.timing.average_slack()

    @property
    def worst_slack(self) -> float:
        return self.timing.worst_slack


@dataclass
class DesignRun:
    """Both flows for one design on one architecture (shared front end)."""

    design: str
    arch_name: str
    synthesis: SynthesisResult
    physical: PhysicalResult
    flow_a: FlowResult
    flow_b: FlowResult


def synthesize(netlist: Netlist, options: FlowOptions) -> SynthesisResult:
    """Front end: AIG optimization, mapping, logic compaction."""
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    arch = architecture_of(options.arch)
    library = arch.library
    core = extract_core(netlist)
    core = CombCore(
        aig=optimize(core.aig, effort=options.opt_effort),
        primary_inputs=core.primary_inputs,
        primary_outputs=core.primary_outputs,
        dffs=core.dffs,
    )
    mapped = map_core(core, options.arch, library)
    pre_stats = gather(mapped)
    if options.run_compaction:
        mapped, report = compact_to_fixpoint(mapped, options.arch, library)
    else:
        area = pre_stats.total_area
        report = CompactionReport(
            applied=False, area_before=area, area_after=area,
            supernodes_collapsed=0, structure_histogram={},
        )
    return SynthesisResult(
        netlist=mapped,
        arch=arch,
        library=library,
        timing_library=characterize_library(library),
        compaction=report,
        pre_compaction_stats=pre_stats,
        stats=gather(mapped),
    )


def _route_flow_a(
    physical: PhysicalResult, options: FlowOptions
) -> tuple:
    grid = physical.placement.grid
    bins = max(4, options.routing_bins_per_side)
    pitch = max(grid.width_um, grid.height_um) / bins
    routing_grid = RoutingGrid(
        cols=max(2, math.ceil(grid.width_um / pitch)),
        rows=max(2, math.ceil(grid.height_um / pitch)),
        bin_pitch=pitch,
        tracks=options.routing_tracks,
    )
    points = physical.placement.net_pin_points(physical.netlist)
    return route_and_extract(routing_grid, points)


def run_flow_a(
    synthesis: SynthesisResult, options: FlowOptions
) -> tuple:
    """ASIC flow on the component-cell library; returns (result, physical)."""
    physical = run_physical_synthesis(
        synthesis.netlist,
        synthesis.library,
        synthesis.timing_library,
        period=options.period,
        seed=options.seed,
        iterations=options.place_iterations,
        effort=options.place_effort,
    )
    routing, wires = _route_flow_a(physical, options)
    timing = analyze(
        physical.netlist, synthesis.timing_library, wires, period=options.period
    )
    # Flow a die area: the standard-cell core at the utilization target.
    die_area = physical.placement.grid.area_um2
    result = FlowResult(
        flow="a",
        arch_name=options.arch,
        netlist_stats=gather(physical.netlist),
        die_area=die_area,
        timing=timing,
        routing=routing,
    )
    return result, physical


def run_flow_b(
    synthesis: SynthesisResult,
    physical: PhysicalResult,
    options: FlowOptions,
) -> FlowResult:
    """Packing into the PLB array plus ASIC-style routing over it."""
    packed: PackedDesign = run_packing_loop(
        physical.netlist,
        physical.placement,
        synthesis.arch,
        synthesis.library,
        synthesis.timing_library,
        period=options.period,
        iterations=options.pack_iterations,
        headroom=options.pack_headroom,
    )
    routing_grid = RoutingGrid(
        cols=packed.packing.cols,
        rows=packed.packing.rows,
        bin_pitch=synthesis.arch.tile_side,
        tracks=options.routing_tracks,
    )
    points = packed.packing.net_pin_points(packed.netlist)
    routing, wires = route_and_extract(routing_grid, points)
    timing = analyze(
        packed.netlist, synthesis.timing_library, wires, period=options.period
    )
    return FlowResult(
        flow="b",
        arch_name=options.arch,
        netlist_stats=gather(packed.netlist),
        die_area=packed.die_area,
        timing=timing,
        routing=routing,
        packing_displacement=packed.packing.total_displacement,
        plbs_used=packed.packing.plbs_used,
        array_side=packed.packing.cols,
    )


def run_design(
    netlist: Netlist, arch, options: Optional[FlowOptions] = None
) -> DesignRun:
    """Run both flows for one design on one architecture.

    ``arch`` is ``"lut"``, ``"granular"``, a registered custom name, or a
    :class:`~repro.core.plb.PLBArchitecture` instance (registered
    automatically).
    """
    if isinstance(arch, PLBArchitecture):
        register_architecture(arch)
        arch = arch.name
    options = (options or FlowOptions()).with_arch(arch)
    synthesis = synthesize(netlist, options)
    flow_a, physical = run_flow_a(synthesis, options)
    flow_b = run_flow_b(synthesis, physical, options)
    return DesignRun(
        design=netlist.name,
        arch_name=arch,
        synthesis=synthesis,
        physical=physical,
        flow_a=flow_a,
        flow_b=flow_b,
    )
