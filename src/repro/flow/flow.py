"""The VPGA design flow (paper Figure 6).

::

    RTL (design generators)
      |  synthesis + technology mapping        (repro.synth.techmap)
      |  regularity-driven logic compaction    (repro.synth.compaction)
      |  physical synthesis + ASIC placement   (repro.place)
      |-- flow a: ASIC routing + extraction + STA          -> FlowResult
      |-- flow b: packing into the PLB array (quadrisection,
      |           iterative with physical synthesis), then
      |           ASIC-style routing over the array + STA  -> FlowResult

    "Flow a is obtained if we skip the Packing step ... essentially the
    standard cell ASIC flow using a library which comprises of cells that
    make up each PLB.  Flow b ... produces a regular PLB array with
    ASIC-style custom routing."

The flow is decomposed into content-addressed stages (synthesis,
physical synthesis, flow-a routing/STA, packing, flow-b routing/STA);
:func:`run_design` keys each stage by a stable hash of its inputs and
consults a :class:`~repro.flow.cache.StageCache` so repeated invocations
skip every unchanged prefix of the pipeline.  Per-stage wall times and
cache events are recorded on the returned :class:`DesignRun`.
"""

from __future__ import annotations

import math
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from ..cells.characterize import TimingLibrary, characterize_library
from ..obs import core as _obs
from ..obs import journal as _journal
from ..cells.library import Library
from ..core.plb import PLBArchitecture, granular_plb, lut_plb
from ..netlist.core import Netlist
from ..netlist.stats import NetlistStats, gather
from ..pack.iterative import PackedDesign, run_packing_loop
from ..place.physical_synthesis import PhysicalResult, run_physical_synthesis
from ..route.extract import route_and_extract
from ..route.grid import RoutingGrid
from ..route.pathfinder import RoutingResult
from ..synth.compaction import CompactionReport, compact_to_fixpoint
from ..synth.from_netlist import CombCore, extract_core
from ..synth.optimize import optimize
from ..synth.techmap import map_core
from ..timing.sta import TimingReport, analyze
from .cache import (
    CacheStats,
    NullCache,
    StageCache,
    canonical_netlist,
    stable_hash,
)
from .options import FlowOptions

#: Deep mapped netlists recurse through reconstruction helpers.
_RECURSION_LIMIT = 100_000

#: Stage names, in pipeline order (used by reports and benchmarks).
STAGES = ("synthesis", "physical", "route_a", "packing", "route_b")

#: Upstream artifacts each stage's compute function consumes.  This is
#: the full data-dependency relation of the Figure-6 pipeline; the
#: stage-graph scheduler (:mod:`repro.flow.scheduler`) builds its task
#: DAG directly from it, so the two execution modes cannot drift.
STAGE_INPUTS: Dict[str, tuple] = {
    "synthesis": (),
    "physical": ("synthesis",),
    "route_a": ("synthesis", "physical"),
    "packing": ("synthesis", "physical"),
    "route_b": ("synthesis", "packing"),
}

#: The upstream stage whose cache key chains into each stage's key
#: (``None`` for the pipeline root).  A subset of :data:`STAGE_INPUTS`:
#: ``route_a``/``packing`` consume the synthesis artifact too, but its
#: content is already pinned transitively through the physical key.
STAGE_KEY_PARENT: Dict[str, Optional[str]] = {
    "synthesis": None,
    "physical": "synthesis",
    "route_a": "physical",
    "packing": "physical",
    "route_b": "packing",
}


class FlowCancelled(RuntimeError):
    """A flow run was cancelled at a stage boundary.

    Raised by :func:`run_design` when its ``cancel`` hook returns True
    between stages.  ``completed`` lists the stages whose artifacts were
    finished (and are therefore already in the content-addressed stage
    cache — a resubmission of the same request resumes warm from them);
    ``next_stage`` is the stage that was about to run.
    """

    def __init__(self, next_stage: str, completed: tuple):
        self.next_stage = next_stage
        self.completed = completed
        super().__init__(
            f"flow cancelled before stage {next_stage!r} "
            f"(completed: {', '.join(completed) or 'none'})"
        )


#: Custom architectures registered for flow runs, by name.
_CUSTOM_ARCHITECTURES: Dict[str, PLBArchitecture] = {}


def register_architecture(arch: PLBArchitecture) -> PLBArchitecture:
    """Make a custom PLB architecture resolvable by name in the flow.

    Together with :func:`repro.core.plb.custom_plb` this enables the
    paper's proposed future work: pushing arbitrary PLB candidates
    through the complete Figure-6 flow.
    """
    _CUSTOM_ARCHITECTURES[arch.name] = arch
    return arch


def architecture_of(name) -> PLBArchitecture:
    if isinstance(name, PLBArchitecture):
        return name
    if name == "lut":
        return lut_plb()
    if name == "granular":
        return granular_plb()
    # The registry read is ambient state in stage-reachable code, but it
    # is cache-coherent by construction: the synthesis key embeds
    # repr(architecture) — the resolved *content*, not the name — so two
    # registrations of different archs under one name cannot collide.
    if name in _CUSTOM_ARCHITECTURES:  # check: allow(CK003)
        return _CUSTOM_ARCHITECTURES[name]  # check: allow(CK003)
    raise ValueError(f"unknown architecture {name!r}")


@dataclass
class SynthesisResult:
    """Mapped + compacted netlist and its provenance."""

    netlist: Netlist
    arch: PLBArchitecture
    library: Library
    timing_library: TimingLibrary
    compaction: CompactionReport
    pre_compaction_stats: NetlistStats
    stats: NetlistStats
    #: Mapped netlist before logic compaction — the golden reference for
    #: cross-stage equivalence checking (``repro check --stage equivalence``).
    pre_compaction_netlist: Optional[Netlist] = None


@dataclass
class FlowResult:
    """One flow endpoint (flow a or flow b) for one design/architecture."""

    flow: str                     # "a" | "b"
    arch_name: str
    netlist_stats: NetlistStats
    die_area: float               # um^2
    timing: TimingReport
    routing: RoutingResult
    packing_displacement: float = 0.0
    plbs_used: int = 0
    array_side: int = 0

    @property
    def average_slack(self) -> float:
        return self.timing.average_slack()

    @property
    def worst_slack(self) -> float:
        return self.timing.worst_slack


@dataclass
class DesignRun:
    """Both flows for one design on one architecture (shared front end)."""

    design: str
    arch_name: str
    synthesis: SynthesisResult
    physical: PhysicalResult
    flow_a: FlowResult
    flow_b: FlowResult
    #: Full packing-stage artifact (netlist + PLB assignment), kept so
    #: ``repro check`` can audit packing legality after the run.
    packed: Optional[PackedDesign] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_cached: Dict[str, bool] = field(default_factory=dict)
    cache_stats: Optional[CacheStats] = None
    journal_path: Optional[Path] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def summary(self) -> Dict:
        """A machine-readable run summary (``repro run --json``).

        Everything scripts used to scrape from stdout: areas, slacks,
        per-stage seconds, cache events, and the journal path when the
        run was traced.
        """
        def flow_summary(result: FlowResult) -> Dict:
            out = {
                "die_area_um2": result.die_area,
                "average_slack_ns": result.average_slack,
                "worst_slack_ns": result.worst_slack,
                "instances": result.netlist_stats.n_instances,
                "nand2_equivalents": result.netlist_stats.nand2_equivalents,
                "routing_iterations": result.routing.iterations,
                "routing_overused_edges": result.routing.overused_edges,
                "total_wirelength_um": result.routing.total_wirelength(),
            }
            if result.flow == "b":
                out["plbs_used"] = result.plbs_used
                out["array_side"] = result.array_side
                out["packing_displacement"] = result.packing_displacement
            return out

        cache = None
        if self.cache_stats is not None:
            cache = {
                "hits": self.cache_stats.hits,
                "misses": self.cache_stats.misses,
                "corrupt": self.cache_stats.corrupt,
                "bytes_read": self.cache_stats.bytes_read,
                "bytes_written": self.cache_stats.bytes_written,
            }
        return {
            "design": self.design,
            "arch": self.arch_name,
            "synthesis": {
                "instances": self.synthesis.stats.n_instances,
                "nand2_equivalents": self.synthesis.stats.nand2_equivalents,
                "total_area_um2": self.synthesis.stats.total_area,
                "compaction_reduction": self.synthesis.compaction.reduction,
            },
            # getattr: physical results unpickled from caches written
            # before the field existed have no placement_stats.
            "placement": dict(
                getattr(self.physical, "placement_stats", None) or {}
            ),
            "flow_a": flow_summary(self.flow_a),
            "flow_b": flow_summary(self.flow_b),
            "stage_seconds": dict(self.stage_seconds),
            "stage_cached": dict(self.stage_cached),
            "total_seconds": self.total_seconds,
            "cache": cache,
            "journal": str(self.journal_path) if self.journal_path else None,
        }

    #: ``summary()`` keys that vary between otherwise-identical runs
    #: (wall times, cache traffic, journal paths) — everything else is a
    #: pure function of (netlist, options, seed).
    VOLATILE_SUMMARY_KEYS = (
        "stage_seconds", "stage_cached", "total_seconds", "cache", "journal",
    )

    def metrics(self) -> Dict:
        """The deterministic subset of :meth:`summary`.

        Byte-for-byte reproducible for a given (design, options, seed):
        a run served through ``repro submit --wait`` and a local
        ``repro run --json --metrics-only`` of the same request emit
        identical JSON (asserted in ``tests/test_serve.py`` and CI).
        """
        doc = self.summary()
        for key in self.VOLATILE_SUMMARY_KEYS:
            doc.pop(key, None)
        return doc

    def performance_report(self) -> str:
        """Per-stage wall time and cache events, one line per stage."""
        lines = [f"stage timings for {self.design}/{self.arch_name}:"]
        for stage in STAGES:
            if stage not in self.stage_seconds:
                continue
            mark = "cached" if self.stage_cached.get(stage) else "computed"
            lines.append(
                f"  {stage:10s} {self.stage_seconds[stage]:9.3f} s  [{mark}]"
            )
        lines.append(f"  {'total':10s} {self.total_seconds:9.3f} s")
        if self.cache_stats is not None:
            lines.append(f"  cache: {self.cache_stats.format()}")
        return "\n".join(lines)


def synthesize(netlist: Netlist, options: FlowOptions) -> SynthesisResult:
    """Front end: AIG optimization, mapping, logic compaction."""
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    arch = architecture_of(options.arch)
    library = arch.library
    with _obs.span("synth.extract"):
        core = extract_core(netlist)
    with _obs.span("synth.optimize", effort=options.opt_effort):
        core = CombCore(
            aig=optimize(core.aig, effort=options.opt_effort),
            primary_inputs=core.primary_inputs,
            primary_outputs=core.primary_outputs,
            dffs=core.dffs,
        )
    with _obs.span("synth.map", arch=options.arch):
        mapped = map_core(core, options.arch, library)
    pre_stats = gather(mapped)
    pre_netlist = mapped.copy()
    if options.run_compaction:
        with _obs.span("synth.compact", arch=options.arch):
            mapped, report = compact_to_fixpoint(mapped, options.arch, library)
    else:
        area = pre_stats.total_area
        report = CompactionReport(
            applied=False, area_before=area, area_after=area,
            supernodes_collapsed=0, structure_histogram={},
        )
    return SynthesisResult(
        netlist=mapped,
        arch=arch,
        library=library,
        timing_library=characterize_library(library),
        compaction=report,
        pre_compaction_stats=pre_stats,
        stats=gather(mapped),
        pre_compaction_netlist=pre_netlist,
    )


def _run_physical(synthesis: SynthesisResult, options: FlowOptions) -> PhysicalResult:
    """Physical synthesis on the mapped netlist (mutates a private copy)."""
    return run_physical_synthesis(
        synthesis.netlist.copy(),
        synthesis.library,
        synthesis.timing_library,
        period=options.period,
        seed=options.seed,
        iterations=options.place_iterations,
        effort=options.place_effort,
        engine=options.sa_engine,
        utilization=options.utilization,
    )


def _route_flow_a(
    physical: PhysicalResult, options: FlowOptions
) -> tuple:
    grid = physical.placement.grid
    bins = max(4, options.routing_bins_per_side)
    pitch = max(grid.width_um, grid.height_um) / bins
    routing_grid = RoutingGrid(
        cols=max(2, math.ceil(grid.width_um / pitch)),
        rows=max(2, math.ceil(grid.height_um / pitch)),
        bin_pitch=pitch,
        tracks=options.routing_tracks,
    )
    points = physical.placement.net_pin_points(physical.netlist)
    return route_and_extract(routing_grid, points)


def _flow_a_result(
    synthesis: SynthesisResult, physical: PhysicalResult, options: FlowOptions
) -> FlowResult:
    """Flow a back end: routing + extraction + STA over the cell grid."""
    routing, wires = _route_flow_a(physical, options)
    timing = analyze(
        physical.netlist, synthesis.timing_library, wires, period=options.period
    )
    # Flow a die area: the standard-cell core at the utilization target.
    return FlowResult(
        flow="a",
        arch_name=options.arch,
        netlist_stats=gather(physical.netlist),
        die_area=physical.placement.grid.area_um2,
        timing=timing,
        routing=routing,
    )


def _pack_stage(
    synthesis: SynthesisResult, physical: PhysicalResult, options: FlowOptions
) -> PackedDesign:
    """Packing into the PLB array, iterated with physical synthesis.

    The packing loop mutates the netlist it is given (buffer insertion
    during re-synthesis), so it gets a private copy — ``physical`` must
    stay a faithful placement-stage artifact for post-hoc audits.
    """
    return run_packing_loop(
        physical.netlist.copy(),
        physical.placement,
        synthesis.arch,
        synthesis.library,
        synthesis.timing_library,
        period=options.period,
        iterations=options.pack_iterations,
        headroom=options.pack_headroom,
    )


def _flow_b_result(
    synthesis: SynthesisResult, packed: PackedDesign, options: FlowOptions
) -> FlowResult:
    """Flow b back end: ASIC-style routing over the PLB array + STA."""
    routing_grid = RoutingGrid(
        cols=packed.packing.cols,
        rows=packed.packing.rows,
        bin_pitch=synthesis.arch.tile_side,
        tracks=options.routing_tracks,
    )
    points = packed.packing.net_pin_points(packed.netlist)
    routing, wires = route_and_extract(routing_grid, points)
    timing = analyze(
        packed.netlist, synthesis.timing_library, wires, period=options.period
    )
    return FlowResult(
        flow="b",
        arch_name=options.arch,
        netlist_stats=gather(packed.netlist),
        die_area=packed.die_area,
        timing=timing,
        routing=routing,
        packing_displacement=packed.packing.total_displacement,
        plbs_used=packed.packing.plbs_used,
        array_side=packed.packing.cols,
    )


def run_flow_a(
    synthesis: SynthesisResult, options: FlowOptions
) -> tuple:
    """ASIC flow on the component-cell library; returns (result, physical)."""
    physical = _run_physical(synthesis, options)
    return _flow_a_result(synthesis, physical, options), physical


def run_flow_b(
    synthesis: SynthesisResult,
    physical: PhysicalResult,
    options: FlowOptions,
) -> FlowResult:
    """Packing into the PLB array plus ASIC-style routing over it."""
    packed = _pack_stage(synthesis, physical, options)
    return _flow_b_result(synthesis, packed, options)


# ----------------------------------------------------------------------
# Stage registry: one definition of every stage's cache key, compute
# function, and boundary audit, shared by the serial path (run_design)
# and the stage-graph scheduler (repro.flow.scheduler).
# ----------------------------------------------------------------------

def stage_cache_key(
    cache: StageCache,
    stage: str,
    options: FlowOptions,
    netlist: Optional[Netlist] = None,
    parent_key: Optional[str] = None,
) -> str:
    """The content-addressed key of one stage's result.

    ``netlist`` is required for the pipeline root (``synthesis``);
    every other stage chains on ``parent_key`` — the key of its
    :data:`STAGE_KEY_PARENT` — so an upstream change invalidates exactly
    its downstream stages.  Component order is load-bearing: it must
    stay byte-identical across releases or every existing cache entry
    silently misses.
    """
    if stage == "synthesis":
        return cache.key(
            "synthesis", canonical_netlist(netlist),
            repr(architecture_of(options.arch)),
            options.opt_effort, options.run_compaction,
        )
    if stage == "physical":
        return cache.key(
            "physical", parent_key, options.seed, options.place_iterations,
            options.place_effort, options.period, options.utilization,
        )
    if stage == "route_a":
        return cache.key(
            "route_a", parent_key, options.routing_tracks,
            options.routing_bins_per_side, options.period,
        )
    if stage == "packing":
        return cache.key(
            "packing", parent_key, options.pack_iterations,
            options.pack_headroom, options.period,
        )
    if stage == "route_b":
        return cache.key(
            "route_b", parent_key, options.routing_tracks, options.period
        )
    raise ValueError(f"unknown stage {stage!r}")


def stage_keys(
    cache: StageCache, netlist: Netlist, options: FlowOptions
) -> Dict[str, str]:
    """Every stage's cache key for one (netlist, options) cell."""
    keys: Dict[str, str] = {}
    for stage in STAGES:
        parent = STAGE_KEY_PARENT[stage]
        keys[stage] = stage_cache_key(
            cache, stage, options,
            netlist=netlist,
            parent_key=keys[parent] if parent is not None else None,
        )
    return keys


def request_key(
    cache: StageCache, netlist: Netlist, options: FlowOptions
) -> str:
    """The sha256 identity of one flow request, for coalescing.

    Derived from the full stage-cache key chain, so it inherits the
    chain's contract exactly: performance knobs (the fields in
    :data:`repro.flow.options.PERF_KNOBS`) do not participate, and two
    requests share a key if and only if every stage of one would be a
    cache hit for the other.  ``repro.serve`` coalesces concurrent
    submissions with equal keys onto a single execution.
    """
    keys = stage_keys(cache, netlist, options)
    return stable_hash("request", *(keys[stage] for stage in STAGES))


def _keytrace_options(stage: str, options: FlowOptions) -> FlowOptions:
    """Wrap ``options`` in the keytrace recording proxy when enabled.

    Gated on ``$REPRO_KEYTRACE`` directly (not through
    :mod:`repro.check.keytrace`) so untraced runs — the overwhelmingly
    common case, including every scheduler worker — never import
    ``repro.check`` at all.
    """
    if os.environ.get("REPRO_KEYTRACE", "") != "1":  # check: allow(CK003)
        return options
    from ..check import keytrace

    return keytrace.traced(stage, options)


def compute_stage(
    stage: str,
    options: FlowOptions,
    artifacts: Dict[str, object],
    netlist: Optional[Netlist] = None,
):
    """Compute one stage from its upstream artifacts.

    ``artifacts`` must hold every stage named in
    ``STAGE_INPUTS[stage]``; the root stage takes the source ``netlist``
    instead.  Pure per (inputs, options, seed) — that purity is what
    makes both the stage cache and cross-process scheduling sound.
    Under ``REPRO_KEYTRACE=1`` the options object is wrapped in a
    recording proxy so :mod:`repro.check.keytrace` can journal the
    attributes each stage actually reads (rule CK005).
    """
    options = _keytrace_options(stage, options)
    if stage == "synthesis":
        return synthesize(netlist, options)
    if stage == "physical":
        return _run_physical(artifacts["synthesis"], options)
    if stage == "route_a":
        return _flow_a_result(
            artifacts["synthesis"], artifacts["physical"], options
        )
    if stage == "packing":
        return _pack_stage(
            artifacts["synthesis"], artifacts["physical"], options
        )
    if stage == "route_b":
        return _flow_b_result(
            artifacts["synthesis"], artifacts["packing"], options
        )
    raise ValueError(f"unknown stage {stage!r}")


def guard_stage(
    stage: str,
    options: FlowOptions,
    artifacts: Dict[str, object],
    context: str,
) -> None:
    """Fatal-only stage-boundary audit (``FlowOptions.check``).

    ``artifacts`` holds the stage's own result plus its
    :data:`STAGE_INPUTS`; a fatal finding raises
    :class:`repro.check.CheckError`.
    """
    if not options.check:
        return
    from ..check.runner import check_stage, enforce

    def run(kind: str, **kw) -> None:
        enforce(check_stage(kind, **kw), f"{context} after {stage}")

    if stage == "synthesis":
        run("netlist", netlist=artifacts["synthesis"].netlist)
    elif stage == "physical":
        physical = artifacts["physical"]
        run("placement", netlist=physical.netlist,
            placement=physical.placement)
    elif stage == "route_a":
        physical = artifacts["physical"]
        run("routing", routing=artifacts["route_a"].routing,
            net_points=physical.placement.net_pin_points(physical.netlist))
    elif stage == "packing":
        synthesis = artifacts["synthesis"]
        packed = artifacts["packing"]
        run("packing", netlist=packed.netlist, packing=packed.packing)
        run("equivalence",
            reference=synthesis.pre_compaction_netlist or synthesis.netlist,
            implementation=packed.netlist)
    elif stage == "route_b":
        packed = artifacts["packing"]
        run("routing", routing=artifacts["route_b"].routing,
            net_points=packed.packing.net_pin_points(packed.netlist))


def _cache_for(options: FlowOptions) -> StageCache:
    return StageCache() if options.use_cache else NullCache()


def run_design(
    netlist: Union[Netlist, str],
    arch,
    options: Optional[FlowOptions] = None,
    cache: Optional[StageCache] = None,
    cancel: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[str, bool, float], None]] = None,
) -> DesignRun:
    """Run both flows for one design on one architecture.

    ``netlist`` is a :class:`~repro.netlist.core.Netlist`, or a design
    name from :data:`repro.designs.DESIGN_BUILDERS` (``"alu"``,
    ``"netswitch"``, ...) built at the ambient ``REPRO_SCALE``.

    ``arch`` is ``"lut"``, ``"granular"``, a registered custom name, or a
    :class:`~repro.core.plb.PLBArchitecture` instance (registered
    automatically).

    Every stage consults ``cache`` (a fresh :class:`StageCache` honoring
    ``options.use_cache`` when not given); stage keys chain so any change
    to an upstream input invalidates everything downstream of it while
    unchanged prefixes are reused.  A cache hit yields a result equal in
    value to a cold computation — determinism of every stage per seed is
    what makes the cache sound.

    ``cancel``, when given, is polled at every stage boundary; once it
    returns True the run raises :class:`FlowCancelled` instead of
    starting the next stage.  Finished stages are already persisted in
    the cache, so a cancelled (or drained) run checkpoints for free: the
    same request resubmitted later resumes warm.  ``progress`` is called
    after each completed stage with ``(stage, cache_hit, seconds)`` —
    the hook ``repro.serve`` uses to stream per-stage job progress.
    Neither hook ever changes computed results.
    """
    if isinstance(netlist, str):
        from ..designs import DESIGN_BUILDERS

        if netlist not in DESIGN_BUILDERS:
            raise ValueError(
                f"unknown design name {netlist!r} "
                f"(choices: {sorted(DESIGN_BUILDERS)})"
            )
        from .experiments import build_design, design_scale

        netlist = build_design(netlist, design_scale())
    elif not isinstance(netlist, Netlist):
        raise TypeError(
            "run_design expects a Netlist or a design name (str), "
            f"got {type(netlist).__name__}"
        )
    if isinstance(arch, PLBArchitecture):
        register_architecture(arch)
        arch = arch.name
    options = (options or FlowOptions()).with_arch(arch)
    cache = cache if cache is not None else _cache_for(options)
    # Tracing: activate when requested; whoever activates owns the trace
    # and writes the journal at the end.  Inside a traced run_cells (or a
    # pool worker's per-cell trace) begin() returns False and this run
    # only records into the ambient trace.
    observing = options.observe or _obs.env_requested()
    own_trace = _obs.begin() if observing else False
    seconds: Dict[str, float] = {}
    cached: Dict[str, bool] = {}
    artifacts: Dict[str, object] = {}

    def staged(stage, key):
        start = time.perf_counter()  # check: allow(DT002) timing report only
        with _obs.span(f"flow.{stage}", stage=stage) as sp:
            result = cache.get(stage, key)
            hit = result is not None
            if not hit:
                result = compute_stage(
                    stage, options, artifacts, netlist=netlist
                )
                cache.put(stage, key, result)
            sp.set(cached=hit)
        elapsed = time.perf_counter() - start  # check: allow(DT002) timing report only
        cached[stage] = hit
        seconds[stage] = elapsed
        _obs.observe(f"stage.seconds.{stage}", elapsed)
        return result

    with _obs.span(
        "run_design", design=netlist.name, arch=arch, seed=options.seed
    ):
        keys = stage_keys(cache, netlist, options)
        for stage in STAGES:
            if cancel is not None and cancel():
                raise FlowCancelled(stage, tuple(artifacts))
            artifacts[stage] = staged(stage, keys[stage])
            guard_stage(stage, options, artifacts, f"{netlist.name}/{arch}")
            if progress is not None:
                progress(stage, cached[stage], seconds[stage])

    run = DesignRun(
        design=netlist.name,
        arch_name=arch,
        synthesis=artifacts["synthesis"],
        physical=artifacts["physical"],
        flow_a=artifacts["route_a"],
        flow_b=artifacts["route_b"],
        packed=artifacts["packing"],
        stage_seconds=seconds,
        stage_cached=cached,
        cache_stats=cache.stats,
    )
    if own_trace:
        run.journal_path = _journal.finalize(f"{netlist.name}-{arch}")
    return run
