"""Stage-graph pipelined scheduler for the evaluation matrix.

The cell-granularity pool (:mod:`repro.flow.parallel`, ``schedule="cell"``)
ships whole (design, arch) cells to workers: each worker walks
synthesis -> physical -> route_a -> packing -> route_b serially, so once
the number of remaining cells drops below the worker count, cores idle —
the matrix wall-clock is ``ceil(cells / jobs) x cell_time`` even though
the stages themselves are independently schedulable units.

This module decomposes the matrix into an explicit task DAG of
(cell, stage) nodes — 40 tasks for the paper's full 8-cell matrix —
whose edges come straight from :data:`repro.flow.flow.STAGE_INPUTS`
(the same relation the sha256 cache-key chain mirrors), and executes it
on a persistent warm worker pool with critical-path-first priority:
cell B's synthesis overlaps cell A's physical stage, and the wall-clock
approaches ``max(critical_path, total_work / jobs)``.

Three mechanisms keep scheduling overhead low:

* **Artifact passing by cache reference.**  Tasks communicate through
  the content-addressed stage cache (:mod:`repro.flow.cache`): a task
  writes its artifact under its stage key, dependents read it locally
  in their own worker — nothing but small task-spec/result tuples ever
  crosses the executor.  With caching disabled the scheduler substitutes
  a private *transport* cache in a temporary directory that is deleted
  when the run ends, so ``use_cache=False`` still recomputes everything
  and persists nothing.
* **Worker-local artifact LRU.**  Each worker keeps its last few
  deserialized artifacts keyed by (stage, key); a worker that runs
  consecutive stages of the same cell never touches the pickle at all.
* **Cache-aware dedup.**  DAG nodes whose (stage, key) is already
  claimed by another node collapse onto it (duplicate cells share one
  computation), and nodes whose key already exists in the cache are
  marked done before the pool ever sees them — a warm matrix runs zero
  tasks.

Determinism is preserved by construction: stages are pure functions of
(inputs, options, seed), every task records results under content
addresses, and result assembly walks cells in input order — so serial,
``schedule="cell"``, and ``schedule="stage"`` runs are bit-identical at
any worker count (asserted in ``tests/test_scheduler.py``).

A stage task that raises fails only the cells that transitively depend
on it: its original traceback is captured in the worker, unaffected
cells complete normally, and the run ends with :class:`StageFailure`
carrying both the traceback and every completed cell's result.
"""

from __future__ import annotations

import heapq
import sys
import tempfile
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import core as _obs
from .cache import CacheStats, StageCache, cache_globally_disabled
from .flow import (
    _RECURSION_LIMIT,
    STAGE_INPUTS,
    STAGES,
    DesignRun,
    compute_stage,
    guard_stage,
    stage_keys,
)
from .options import FlowOptions

Cell = Tuple[str, str]

#: Relative stage cost weights for critical-path-first priorities,
#: from the measured full-scale profile (DESIGN.md section 6: physical
#: dominates, synthesis and packing follow, routing is cheap).  Only the
#: *ordering* of ready tasks depends on these; results never do.
STAGE_WEIGHTS: Dict[str, float] = {
    "synthesis": 3.0,
    "physical": 6.0,
    "route_a": 1.0,
    "packing": 2.0,
    "route_b": 1.0,
}


class SchedulerInterrupted(RuntimeError):
    """The stage-graph run was cancelled before the DAG drained.

    Raised when the ``cancel`` hook fires (or re-raised alongside a
    ``KeyboardInterrupt``) after the orderly shutdown path ran: queued
    futures cancelled, in-flight stage tasks finished (their artifacts
    land in the cache, so a rerun resumes warm), the dispatch heap
    drained, and the transport directory cleaned.  ``done`` counts tasks
    that completed; ``pending`` counts tasks that never ran.
    """

    def __init__(self, done: int, pending: int):
        self.done = done
        self.pending = pending
        super().__init__(
            f"stage-graph run interrupted: {done} task(s) completed, "
            f"{pending} cancelled before running"
        )


class StageFailure(RuntimeError):
    """A stage task raised; only its dependent cells were lost.

    ``cell``/``stage`` locate the first failing task, ``traceback_text``
    is the original worker-side traceback, ``failed`` lists every
    (cell, stage) pair that failed or was skipped because an upstream
    task failed, and ``completed`` maps every unaffected cell to its
    finished :class:`~repro.flow.flow.DesignRun`.
    """

    def __init__(
        self,
        cell: Cell,
        stage: str,
        traceback_text: str,
        failed: List[Tuple[Cell, str]],
        completed: Dict[Cell, DesignRun],
    ):
        self.cell = cell
        self.stage = stage
        self.traceback_text = traceback_text
        self.failed = failed
        self.completed = completed
        lost = sorted({f"{c[0]}/{c[1]}" for c, _stage in failed})
        super().__init__(
            f"stage task {stage} failed for cell {cell[0]}/{cell[1]} "
            f"(cells lost: {', '.join(lost)}; "
            f"{len(completed)} cell(s) completed)\n"
            f"--- original worker traceback ---\n{traceback_text}"
        )


@dataclass
class _Task:
    """One (cell, stage) node of the task DAG."""

    tid: int
    cell: Cell                    # primary cell (first to claim the key)
    stage: str
    key: str
    deps: Set[int] = field(default_factory=set)
    dependents: List[int] = field(default_factory=list)
    cells: List[Cell] = field(default_factory=list)  # all attached cells
    priority: float = 0.0
    #: pending -> running -> done | failed | skipped; "cached" tasks are
    #: born done (their key was already in the cache).
    state: str = "pending"
    waiting: int = 0              # unfinished dependency count
    hit: bool = False
    elapsed: float = 0.0
    stats: Optional[CacheStats] = None
    events: Optional[List[dict]] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class _TaskSpec:
    """The picklable description a worker needs to run one task."""

    tid: int
    design: str
    arch: str
    stage: str
    scale: float
    key: str
    input_keys: Tuple[Tuple[str, str], ...]  # ((stage, key), ...)
    cache_root: str
    options: FlowOptions
    observe: bool


# ----------------------------------------------------------------------
# DAG construction
# ----------------------------------------------------------------------

def build_task_graph(
    cells: Sequence[Cell],
    cell_keys: Dict[Cell, Dict[str, str]],
    cached: Optional[Set[Tuple[str, str]]] = None,
) -> List[_Task]:
    """The task DAG for ``cells`` given each cell's stage-key chain.

    Pure data transformation (no I/O) so tests can drive it directly:
    nodes dedup on (stage, key) — a later cell whose stage resolves to
    an already-claimed key attaches to the existing node — and nodes
    whose key appears in ``cached`` are born ``state="cached"`` with a
    hit recorded.  Dependency edges mirror
    :data:`repro.flow.flow.STAGE_INPUTS`; priorities are
    critical-path-first (a node's priority is its own weight plus the
    heaviest path below it), tie-broken by task id so the ready order
    is deterministic.
    """
    cached = cached or set()
    tasks: List[_Task] = []
    by_key: Dict[Tuple[str, str], int] = {}
    for cell in cells:
        mine: Dict[str, int] = {}
        for stage in STAGES:
            key = cell_keys[cell][stage]
            existing = by_key.get((stage, key))
            if existing is not None:
                tasks[existing].cells.append(cell)
                mine[stage] = existing
                continue
            tid = len(tasks)
            task = _Task(tid=tid, cell=cell, stage=stage, key=key)
            task.cells.append(cell)
            if (stage, key) in cached:
                task.state = "cached"
                task.hit = True
            else:
                for parent in STAGE_INPUTS[stage]:
                    dep = mine[parent]
                    if tasks[dep].state != "cached":
                        task.deps.add(dep)
                        tasks[dep].dependents.append(tid)
            task.waiting = len(task.deps)
            tasks.append(task)
            by_key[(stage, key)] = tid
            mine[stage] = tid
    # Critical-path priorities: dependents always carry larger ids (a
    # node's deps exist before it), so one reverse sweep suffices.
    for task in reversed(tasks):
        below = max(
            (tasks[d].priority for d in task.dependents), default=0.0
        )
        task.priority = STAGE_WEIGHTS.get(task.stage, 1.0) + below
    return tasks


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Worker-local artifact LRU keyed by (stage, key).  A worker that runs
#: consecutive stages of one cell hits this and never re-deserializes;
#: sized to hold a full cell's artifacts plus a neighbor's.
_LRU: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
_LRU_CAPACITY = 8


def _lru_get(entry: Tuple[str, str]):
    artifact = _LRU.get(entry)
    if artifact is not None:
        _LRU.move_to_end(entry)
        _obs.counter("sched.lru.hit")
    return artifact


def _lru_put(entry: Tuple[str, str], artifact) -> None:
    _LRU[entry] = artifact
    _LRU.move_to_end(entry)
    while len(_LRU) > _LRU_CAPACITY:
        _LRU.popitem(last=False)


def _fetch(cache: StageCache, stage: str, key: str):
    """LRU -> cache lookup for one artifact (None on miss)."""
    artifact = _lru_get((stage, key))
    if artifact is None:
        artifact = cache.get(stage, key)
        if artifact is not None:
            _lru_put((stage, key), artifact)
    return artifact


def _resolve(
    cache: StageCache, spec: _TaskSpec, stage: str, keys: Dict[str, str]
):
    """Load one artifact by key, recomputing its chain if it is gone.

    The normal path is a single cache read (the upstream task wrote the
    artifact before this task was scheduled).  If the entry has been
    evicted or corrupted in between, the worker self-heals by
    recomputing the missing prefix locally — slower, never wrong.
    """
    artifact = _fetch(cache, stage, keys[stage])
    if artifact is not None:
        return artifact
    _obs.counter("sched.input_recompute")
    inputs = {
        parent: _resolve(cache, spec, parent, keys)
        for parent in STAGE_INPUTS[stage]
    }
    netlist = None
    if stage == "synthesis":
        from .experiments import build_design

        netlist = build_design(spec.design, spec.scale)
    artifact = compute_stage(stage, spec.options, inputs, netlist=netlist)
    cache.put(stage, keys[stage], artifact)
    _lru_put((stage, keys[stage]), artifact)
    return artifact


def _run_stage_task(spec: _TaskSpec) -> tuple:
    """Worker body: ensure one stage artifact exists under its key.

    Returns ``(tid, hit, elapsed, cache_stats, events, error)`` — never
    raises: a failure is captured as its formatted traceback so the
    parent can fail exactly the dependent cells and keep the rest of
    the matrix running.
    """
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    own_trace = spec.observe and _obs.begin()
    cache = StageCache(root=Path(spec.cache_root), respect_env=False)
    options = spec.options
    keys = dict(spec.input_keys)
    keys[spec.stage] = spec.key
    error: Optional[str] = None
    hit = False
    start = time.perf_counter()  # check: allow(DT002) stage timing report only
    try:
        with _obs.span(
            f"flow.{spec.stage}", stage=spec.stage, design=spec.design,
            arch=spec.arch, sched="stage",
        ) as sp:
            artifact = _fetch(cache, spec.stage, spec.key)
            hit = artifact is not None
            inputs: Dict[str, object] = {}
            if not hit or options.check:
                inputs = {
                    parent: _resolve(cache, spec, parent, keys)
                    for parent in STAGE_INPUTS[spec.stage]
                }
            if not hit:
                netlist = None
                if spec.stage == "synthesis":
                    from .experiments import build_design

                    netlist = build_design(spec.design, spec.scale)
                artifact = compute_stage(
                    spec.stage, options, inputs, netlist=netlist
                )
                cache.put(spec.stage, spec.key, artifact)
                _lru_put((spec.stage, spec.key), artifact)
            if options.check:
                guard_stage(
                    spec.stage, options,
                    {**inputs, spec.stage: artifact},
                    f"{spec.design}/{spec.arch}",
                )
            sp.set(cached=hit)
    except Exception:
        error = traceback.format_exc()
    elapsed = time.perf_counter() - start  # check: allow(DT002) stage timing report only
    events = _obs.drain() if own_trace else None
    return spec.tid, hit, elapsed, cache.stats, events, error


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def _observing(options: FlowOptions) -> bool:
    return options.observe or _obs.env_requested()


def run_stage_graph(
    cells: Sequence[Cell],
    scale: float,
    options: FlowOptions,
    jobs: int,
    cancel: Optional[Callable[[], bool]] = None,
) -> Dict[Cell, DesignRun]:
    """Run the matrix as a pipelined (cell, stage) task DAG.

    The result dict is keyed by cell in input order and is bit-identical
    to the serial and cell-pool paths for any ``jobs``.  Raises
    :class:`StageFailure` when any task fails (after every unaffected
    cell has completed).

    ``cancel`` is polled between dispatches; once it returns True the
    run shuts down in order — no new tasks dispatched, queued futures
    cancelled, in-flight tasks finished (their artifacts stay cached) —
    and raises :class:`SchedulerInterrupted`.  A ``KeyboardInterrupt``
    (Ctrl-C mid-matrix) takes the same orderly path and is re-raised.
    Either way the transport directory is always cleaned up.
    """
    from .experiments import build_design
    from .parallel import _warm_worker

    cells = list(dict.fromkeys(cells))
    transport: Optional[tempfile.TemporaryDirectory] = None
    if options.use_cache and not cache_globally_disabled():
        cache = StageCache()
    else:
        transport = tempfile.TemporaryDirectory(prefix="repro-stage-ipc-")
        cache = StageCache(root=Path(transport.name), respect_env=False)
    try:
        return _run_graph(cells, scale, options, jobs, cache, build_design,
                          _warm_worker, cancel)
    finally:
        if transport is not None:
            transport.cleanup()


def _run_graph(
    cells: List[Cell],
    scale: float,
    options: FlowOptions,
    jobs: int,
    cache: StageCache,
    build_design,
    warm_worker,
    cancel: Optional[Callable[[], bool]] = None,
) -> Dict[Cell, DesignRun]:
    observe = _observing(options)
    designs = {}
    for design, _arch in cells:
        if design not in designs:
            designs[design] = build_design(design, scale)
    cell_options = {
        cell: options.with_arch(cell[1]) for cell in cells
    }
    cell_keys = {
        cell: stage_keys(cache, designs[cell[0]], cell_options[cell])
        for cell in cells
    }
    cached_keys = {
        (stage, keys[stage])
        for keys in cell_keys.values()
        for stage in STAGES
        if cache.has(stage, keys[stage])
    }
    tasks = build_task_graph(cells, cell_keys, cached=cached_keys)
    cell_tasks: Dict[Cell, Dict[str, _Task]] = {cell: {} for cell in cells}
    for task in tasks:
        for cell in task.cells:
            cell_tasks[cell][task.stage] = task

    runnable = [t for t in tasks if t.state == "pending"]
    with _obs.span(
        "sched.graph", cells=len(cells), tasks=len(tasks),
        precached=len(tasks) - len(runnable), jobs=jobs,
    ):
        if runnable:
            _execute(tasks, runnable, cells, cell_options, cell_keys,
                     scale, cache, jobs, observe, warm_worker, cancel)
        # Merge worker trace fragments in task order — deterministic for
        # any worker count or completion order.
        for task in tasks:
            if task.events:
                _obs.absorb(task.events)

        failed: List[Tuple[Cell, str]] = []
        lost_cells: Set[Cell] = set()
        for task in tasks:
            if task.state in ("failed", "skipped"):
                for cell in task.cells:
                    failed.append((cell, task.stage))
                    lost_cells.add(cell)

        runs: Dict[Cell, DesignRun] = {}
        for cell in cells:
            if cell in lost_cells:
                continue
            runs[cell] = _assemble(
                cell, designs[cell[0]], cell_options[cell],
                cell_keys[cell], cell_tasks[cell], cache,
            )

    if failed:
        first = min(
            (t for t in tasks if t.state == "failed"), key=lambda t: t.tid
        )
        raise StageFailure(
            cell=first.cell, stage=first.stage,
            traceback_text=first.error or "",
            failed=failed, completed=runs,
        )
    return runs


def _execute(
    tasks: List[_Task],
    runnable: List[_Task],
    cells: List[Cell],
    cell_options: Dict[Cell, FlowOptions],
    cell_keys: Dict[Cell, Dict[str, str]],
    scale: float,
    cache: StageCache,
    jobs: int,
    observe: bool,
    warm_worker,
    cancel: Optional[Callable[[], bool]] = None,
) -> None:
    """Drive the pool: highest-priority ready task first, until drained."""
    ready: List[Tuple[float, int]] = [
        (-t.priority, t.tid) for t in runnable if t.waiting == 0
    ]
    heapq.heapify(ready)
    arch_names = tuple(dict.fromkeys(arch for _design, arch in cells))
    workers = max(1, min(jobs, len(runnable)))
    inflight: Dict[object, int] = {}

    def spec_for(task: _Task) -> _TaskSpec:
        cell = task.cell
        keys = cell_keys[cell]
        return _TaskSpec(
            tid=task.tid, design=cell[0], arch=cell[1], stage=task.stage,
            scale=scale, key=task.key,
            input_keys=tuple(
                (parent, keys[parent])
                for parent in STAGE_INPUTS[task.stage]
            ),
            cache_root=str(cache.root), options=cell_options[cell],
            observe=observe,
        )

    def skip_dependents(tid: int) -> None:
        stack = list(tasks[tid].dependents)
        while stack:
            dependent = tasks[stack.pop()]
            if dependent.state in ("skipped", "failed"):
                continue
            dependent.state = "skipped"
            stack.extend(dependent.dependents)

    def interrupt(pool) -> None:
        """Orderly shutdown: drain the heap, cancel queued futures, let
        in-flight tasks finish (their artifacts are already headed for
        the cache), and mark everything unrun as skipped."""
        ready.clear()
        for future in list(inflight):
            future.cancel()
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # a dead worker must not mask the interrupt
            pass
        for task in tasks:
            if task.state in ("pending", "running"):
                task.state = "skipped"
        _obs.point(
            "sched.interrupted",
            done=sum(1 for t in tasks if t.state in ("done", "cached")),
            skipped=sum(1 for t in tasks if t.state == "skipped"),
        )

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=warm_worker,
        initargs=(arch_names,),
    ) as pool:
        try:
            while ready or inflight:
                if cancel is not None and cancel():
                    interrupt(pool)
                    raise SchedulerInterrupted(
                        done=sum(
                            1 for t in tasks
                            if t.state in ("done", "cached")
                        ),
                        pending=sum(
                            1 for t in tasks if t.state == "skipped"
                        ),
                    )
                while ready and len(inflight) < workers:
                    _neg, tid = heapq.heappop(ready)
                    task = tasks[tid]
                    if task.state != "pending":  # skipped while queued
                        continue
                    task.state = "running"
                    _obs.point(
                        "sched.dispatch", task=tid, stage=task.stage,
                        design=task.cell[0], arch=task.cell[1],
                        priority=task.priority,
                    )
                    inflight[pool.submit(_run_stage_task, spec_for(task))] = tid
                if not inflight:
                    continue
                done, _pending = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    tid = inflight.pop(future)
                    task = tasks[tid]
                    _tid, hit, elapsed, stats, events, error = future.result()
                    task.hit = hit
                    task.elapsed = elapsed
                    task.stats = stats
                    task.events = events
                    _obs.point(
                        "sched.task", task=tid, stage=task.stage,
                        design=task.cell[0], arch=task.cell[1],
                        cached=hit, seconds=elapsed,
                        outcome="error" if error else "ok",
                    )
                    if error is not None:
                        task.state = "failed"
                        task.error = error
                        skip_dependents(tid)
                        continue
                    task.state = "done"
                    for did in task.dependents:
                        dependent = tasks[did]
                        if dependent.state != "pending":
                            continue
                        dependent.waiting -= 1
                        if dependent.waiting == 0:
                            heapq.heappush(
                                ready, (-dependent.priority, dependent.tid)
                            )
        except KeyboardInterrupt:
            # Ctrl-C mid-matrix (or a worker-side interrupt surfaced by
            # future.result()): take the same orderly path, then let the
            # interrupt propagate — run_stage_graph's finally still
            # removes the transport directory.
            interrupt(pool)
            raise


def _assemble(
    cell: Cell,
    netlist,
    options: FlowOptions,
    keys: Dict[str, str],
    stage_tasks: Dict[str, _Task],
    cache: StageCache,
) -> DesignRun:
    """Build one cell's DesignRun from its content-addressed artifacts.

    Reads through a private cache handle so per-cell read stats stay
    separable; if any artifact fails to load (evicted or corrupted
    after its task ran), falls back to :func:`repro.flow.flow.run_design`
    on the same cache, which recomputes exactly the missing stages.
    """
    reader = StageCache(root=cache.root, respect_env=False)
    reader.enabled = cache.enabled
    artifacts: Dict[str, object] = {}
    for stage in STAGES:
        artifact = reader.get(stage, keys[stage])
        if artifact is None:
            from .flow import run_design

            _obs.counter("sched.assembly_recompute")
            return run_design(netlist, cell[1], options, cache=reader)
        artifacts[stage] = artifact

    stats = CacheStats()
    for stage, task in stage_tasks.items():
        # A task's worker-side cache traffic is attributed to its
        # primary cell only, so dedup never double-counts volume.
        if task.stats is not None and task.cell == cell:
            stats.merge(task.stats)
    stats.merge(reader.stats)
    run = DesignRun(
        design=netlist.name,
        arch_name=cell[1],
        synthesis=artifacts["synthesis"],
        physical=artifacts["physical"],
        flow_a=artifacts["route_a"],
        flow_b=artifacts["route_b"],
        packed=artifacts["packing"],
        stage_seconds={
            stage: stage_tasks[stage].elapsed for stage in STAGES
        },
        stage_cached={stage: stage_tasks[stage].hit for stage in STAGES},
        cache_stats=stats,
    )
    return run
