"""Experiment drivers regenerating the paper's tables and figures.

The full evaluation matrix (4 designs x 2 PLB architectures x flows a/b)
is computed once per process and shared by the Table 1 (area) and Table 2
(timing) reports, exactly as in the paper where both tables come from the
same runs.

Design sizes scale with the ``REPRO_SCALE`` environment variable
(default 1.0; DESIGN.md explains why the paper's absolute gate counts are
scaled down for a pure-Python flow).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.s3 import category_counts, modified_s3_implementable, s3_feasible_set
from ..designs import build_alu, build_firewire, build_fpu, build_netswitch
from ..netlist.core import Netlist
from .cache import CacheStats
from .flow import DesignRun
from .options import FlowOptions
from .parallel import run_cells

ARCHES = ("granular", "lut")
DESIGNS = ("alu", "firewire", "fpu", "netswitch")
DATAPATH_DESIGNS = ("alu", "fpu", "netswitch")


def design_scale() -> float:
    """Global design-size scale from ``REPRO_SCALE`` (default 1.0).

    An unparsable value falls back to 1.0 but warns loudly — a silently
    ignored ``REPRO_SCALE`` would make a misconfigured full-scale run
    look like a default-scale one.
    """
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_SCALE={raw!r} is not a valid float; "
            "falling back to scale 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1.0


def build_design(name: str, scale: Optional[float] = None) -> Netlist:
    """Instantiate one benchmark design at the requested scale."""
    s = design_scale() if scale is None else scale
    if name == "alu":
        return build_alu(width=max(4, round(16 * s)))
    if name == "firewire":
        return build_firewire(
            timer_bits=max(6, round(12 * s)),
            config_regs=max(3, round(6 * s)),
            fifo_depth=max(3, round(8 * s)),
        )
    if name == "fpu":
        return build_fpu(
            exp_bits=max(3, round(5 * s)),
            mant_bits=max(4, round(10 * s)),
        )
    if name == "netswitch":
        return build_netswitch(
            ports=4 if s >= 0.5 else 2,
            width=max(4, round(8 * s)),
        )
    raise ValueError(f"unknown design {name!r}")


def default_options() -> FlowOptions:
    """Experiment defaults: identical effort for both architectures."""
    return FlowOptions(place_effort=0.2, seed=7)


@dataclass
class Matrix:
    """The full evaluation matrix."""

    runs: Dict[Tuple[str, str], DesignRun]

    def run(self, design: str, arch: str) -> DesignRun:
        return self.runs[(design, arch)]

    def aggregate_cache_stats(self) -> CacheStats:
        """Cache hits/misses/bytes summed over every cell's flow run."""
        total = CacheStats()
        for run in self.runs.values():
            if run.cache_stats is not None:
                total.merge(run.cache_stats)
        return total

    def performance_report(self) -> str:
        """Per-cell stage timings plus aggregate cache statistics."""
        lines = [run.performance_report() for run in self.runs.values()]
        lines.append(f"matrix cache totals: {self.aggregate_cache_stats().format()}")
        return "\n".join(lines)


_matrix_cache: Dict[Tuple[float, int, float, Tuple[str, ...]], Matrix] = {}


def run_matrix(
    options: Optional[FlowOptions] = None,
    designs: Tuple[str, ...] = DESIGNS,
    scale: Optional[float] = None,
    jobs: Optional[int] = None,
) -> Matrix:
    """Run (and memoize) the evaluation matrix.

    ``jobs`` fans the independent (design, arch) cells out over worker
    processes (default: ``options.jobs``; 1 = serial).  The worker count
    never changes results — the in-process memoization key deliberately
    excludes it.
    """
    options = options or default_options()
    s = design_scale() if scale is None else scale
    key = (s, options.seed, options.place_effort, designs)
    if key in _matrix_cache:
        return _matrix_cache[key]
    cells = [(design, arch) for design in designs for arch in ARCHES]
    runs = run_cells(cells, s, options, jobs=options.jobs if jobs is None else jobs)
    matrix = Matrix(runs=runs)
    _matrix_cache[key] = matrix
    return matrix


# ----------------------------------------------------------------------
# Table 1: die area
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    design: str
    granular_flow_a: float
    granular_flow_b: float
    lut_flow_a: float
    lut_flow_b: float

    @property
    def granular_reduction(self) -> float:
        """Flow-b die-area reduction of granular vs LUT (positive = win)."""
        return 1.0 - self.granular_flow_b / self.lut_flow_b

    @property
    def granular_overhead(self) -> float:
        """Absolute packing overhead (flow b - flow a), granular, um^2."""
        return self.granular_flow_b - self.granular_flow_a

    @property
    def lut_overhead(self) -> float:
        return self.lut_flow_b - self.lut_flow_a


@dataclass
class Table1:
    """Paper Table 1: die-area comparison."""

    rows: Dict[str, Table1Row]

    @property
    def datapath_average_reduction(self) -> float:
        vals = [self.rows[d].granular_reduction for d in DATAPATH_DESIGNS if d in self.rows]
        return sum(vals) / len(vals)

    @property
    def fpu_reduction(self) -> float:
        return self.rows["fpu"].granular_reduction

    @property
    def firewire_reduction(self) -> float:
        return self.rows["firewire"].granular_reduction

    @property
    def overhead_reduction(self) -> float:
        """How much less absolute packing overhead the granular PLB pays."""
        lut = sum(r.lut_overhead for r in self.rows.values())
        gran = sum(r.granular_overhead for r in self.rows.values())
        if lut <= 0:
            return 0.0
        return 1.0 - gran / lut

    @property
    def datapath_overhead_reduction(self) -> float:
        """Overhead saved on the datapath designs (the paper's ~48-88%).

        Firewire is excluded: a sequential-dominated design is DFF-bound
        on both architectures, so its packing overhead scales with the PLB
        area (where the granular PLB loses by construction).
        """
        rows = [self.rows[d] for d in DATAPATH_DESIGNS if d in self.rows]
        lut = sum(r.lut_overhead for r in rows)
        gran = sum(r.granular_overhead for r in rows)
        if lut <= 0:
            return 0.0
        return 1.0 - gran / lut

    def format(self) -> str:
        lines = [
            "Table 1: Die-Area (um^2)",
            f"{'design':12s} {'granular a':>12s} {'granular b':>12s} "
            f"{'LUT a':>12s} {'LUT b':>12s} {'gran. win':>10s}",
        ]
        for name, row in sorted(self.rows.items()):
            lines.append(
                f"{name:12s} {row.granular_flow_a:12.0f} {row.granular_flow_b:12.0f} "
                f"{row.lut_flow_a:12.0f} {row.lut_flow_b:12.0f} "
                f"{row.granular_reduction:10.1%}"
            )
        lines.append(
            f"datapath average reduction: {self.datapath_average_reduction:.1%} "
            f"(paper: ~32%); FPU: {self.fpu_reduction:.1%} (paper: ~40%); "
            f"Firewire: {self.firewire_reduction:.1%} (paper: negative); "
            f"datapath packing-overhead saved by granular: "
            f"{self.datapath_overhead_reduction:.1%} (paper: ~48%, up to 88.6%)"
        )
        return "\n".join(lines)


def run_table1(matrix: Optional[Matrix] = None) -> Table1:
    matrix = matrix or run_matrix()
    rows = {}
    for design in dict.fromkeys(d for d, _a in matrix.runs):
        gran = matrix.run(design, "granular")
        lut = matrix.run(design, "lut")
        rows[design] = Table1Row(
            design=design,
            granular_flow_a=gran.flow_a.die_area,
            granular_flow_b=gran.flow_b.die_area,
            lut_flow_a=lut.flow_a.die_area,
            lut_flow_b=lut.flow_b.die_area,
        )
    return Table1(rows=rows)


# ----------------------------------------------------------------------
# Table 2: timing (average slack over the top 10 critical paths)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    design: str
    n_gates: float  # NAND2 equivalents, as the paper reports sizes
    granular_flow_a: float
    granular_flow_b: float
    lut_flow_a: float
    lut_flow_b: float

    @property
    def slack_improvement(self) -> float:
        """Relative improvement of granular flow-b slack vs LUT flow-b.

        Slacks are negative against the paper's 0.5 ns target; improvement
        is measured on the slack deficit, as the paper does.
        """
        lut_deficit = -min(0.0, self.lut_flow_b)
        gran_deficit = -min(0.0, self.granular_flow_b)
        if lut_deficit <= 0:
            return 0.0
        return 1.0 - gran_deficit / lut_deficit

    @property
    def granular_degradation(self) -> float:
        """Slack lost going flow a -> flow b (granular)."""
        return self.granular_flow_a - self.granular_flow_b

    @property
    def lut_degradation(self) -> float:
        return self.lut_flow_a - self.lut_flow_b


@dataclass
class Table2:
    """Paper Table 2: path slack 1-10 (ns)."""

    rows: Dict[str, Table2Row]
    period: float

    @property
    def average_slack_improvement(self) -> float:
        vals = [row.slack_improvement for row in self.rows.values()]
        return sum(vals) / len(vals)

    @property
    def degradation_reduction(self) -> float:
        """How much less a->b slack degradation the granular PLB suffers."""
        lut = sum(max(0.0, r.lut_degradation) for r in self.rows.values())
        gran = sum(max(0.0, r.granular_degradation) for r in self.rows.values())
        if lut <= 0:
            return 0.0
        return 1.0 - gran / lut

    def format(self) -> str:
        lines = [
            f"Table 2: Path Slack 1-10 (ns), cycle time {self.period} ns",
            f"{'design':12s} {'gates':>8s} {'granular a':>12s} {'granular b':>12s} "
            f"{'LUT a':>12s} {'LUT b':>12s} {'improve':>9s}",
        ]
        for name, row in sorted(self.rows.items()):
            lines.append(
                f"{name:12s} {row.n_gates:8.0f} {row.granular_flow_a:12.3f} "
                f"{row.granular_flow_b:12.3f} {row.lut_flow_a:12.3f} "
                f"{row.lut_flow_b:12.3f} {row.slack_improvement:9.1%}"
            )
        lines.append(
            f"average slack improvement: {self.average_slack_improvement:.1%} "
            f"(paper: ~18%); a->b degradation saved by granular: "
            f"{self.degradation_reduction:.1%} (paper: ~68%)"
        )
        return "\n".join(lines)


def run_table2(matrix: Optional[Matrix] = None) -> Table2:
    matrix = matrix or run_matrix()
    rows = {}
    period = 0.5
    for design in dict.fromkeys(d for d, _a in matrix.runs):
        gran = matrix.run(design, "granular")
        lut = matrix.run(design, "lut")
        period = gran.flow_a.timing.period
        rows[design] = Table2Row(
            design=design,
            n_gates=lut.synthesis.stats.nand2_equivalents,
            granular_flow_a=gran.flow_a.average_slack,
            granular_flow_b=gran.flow_b.average_slack,
            lut_flow_a=lut.flow_a.average_slack,
            lut_flow_b=lut.flow_b.average_slack,
        )
    return Table2(rows=rows, period=period)


# ----------------------------------------------------------------------
# Figure 2 / Section 2 data
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure2Data:
    """The function-analysis results of paper Section 2.1."""

    s3_feasible: int
    s3_infeasible: int
    category_counts: Dict[str, int]
    modified_s3_coverage: int

    def format(self) -> str:
        lines = [
            "Figure 2: S3-infeasible 3-input functions by category",
            f"  S3-feasible: {self.s3_feasible} of 256 (paper: 196)",
        ]
        for name, count in self.category_counts.items():
            lines.append(f"  {name}: {count}")
        lines.append(
            f"  modified S3 coverage: {self.modified_s3_coverage} of 256 (paper: all)"
        )
        return "\n".join(lines)


def run_figure2() -> Figure2Data:
    feasible = len(s3_feasible_set())
    counts = {cat.name: n for cat, n in category_counts().items()}
    return Figure2Data(
        s3_feasible=feasible,
        s3_infeasible=256 - feasible,
        category_counts=counts,
        modified_s3_coverage=len(modified_s3_implementable()),
    )


# ----------------------------------------------------------------------
# Compaction summary (the ~15% claim)
# ----------------------------------------------------------------------

@dataclass
class CompactionSummary:
    reductions: Dict[Tuple[str, str], float]

    @property
    def average(self) -> float:
        if not self.reductions:
            return 0.0
        return sum(self.reductions.values()) / len(self.reductions)

    def format(self) -> str:
        lines = ["Compaction gate-area reduction (paper: ~15% average)"]
        for (design, arch), value in sorted(self.reductions.items()):
            lines.append(f"  {design:12s} {arch:9s} {value:6.1%}")
        lines.append(f"  average: {self.average:.1%}")
        return "\n".join(lines)


def run_compaction_summary(matrix: Optional[Matrix] = None) -> CompactionSummary:
    matrix = matrix or run_matrix()
    return CompactionSummary(
        reductions={
            key: run.synthesis.compaction.reduction
            for key, run in matrix.runs.items()
        }
    )
