"""Flow configuration."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from ..timing.sta import DEFAULT_CLOCK_PERIOD_NS

#: Performance/observability knobs: the FlowOptions fields that NEVER
#: change computed results and are therefore excluded from stage cache
#: keys (and, by construction, from ``request_key`` coalescing).  This
#: frozenset is the single source of truth for that contract — the key
#: builders in :mod:`repro.flow.flow`, the submittable-option list in
#: :mod:`repro.serve.jobs`, and the ``CK`` static-analysis family in
#: :mod:`repro.check.cachekey` all derive from (or are checked against)
#: it.  Adding a field here is a *claim* that cached and fresh runs are
#: bit-identical under any value of the field; ``repro check --rules CK``
#: and the key-sensitivity property test enforce the claim.
PERF_KNOBS = frozenset({
    "jobs", "schedule", "use_cache", "observe", "check", "sa_engine",
})


@dataclass(frozen=True)
class FlowOptions:
    """Knobs for one flow run (defaults match the paper's setup).

    ``arch`` is ``"lut"`` or ``"granular"``.  ``place_effort`` scales the
    annealing move budget (1.0 = full VPR schedule); experiment drivers
    lower it for large designs to keep pure-Python runtimes sane — the
    comparison is differential, so both architectures always run with
    identical effort.

    ``jobs`` is the worker count for the parallel experiment-matrix
    runner (1 = serial, the exact legacy path); results are identical
    for any worker count because every stage is deterministic per seed.
    ``schedule`` picks the parallel decomposition: ``"stage"`` (default)
    runs the matrix as a pipelined (cell, stage) task DAG
    (:mod:`repro.flow.scheduler`); ``"cell"`` is the legacy
    whole-cell-per-worker pool.  ``use_cache`` enables the
    content-addressed stage cache (see :mod:`repro.flow.cache`).  None
    of these knobs affects computed results — serial, cell, and stage
    runs are bit-identical at any worker count.

    ``observe`` turns on the :mod:`repro.obs` tracing subsystem for the
    run: spans, metrics, and cache events are recorded and written to a
    JSONL journal (also enabled by ``--trace`` / ``REPRO_TRACE``).  Like
    the performance knobs it never changes computed results — traced and
    untraced runs are bit-identical — and it is excluded from stage
    cache keys.

    ``check`` runs the fatal-severity subset of :mod:`repro.check` at
    every flow stage boundary (``--check`` on the CLI); a fatal finding
    aborts the run with :class:`repro.check.CheckError`.  Audits only
    read stage artifacts, so this too never changes computed results.

    ``sa_engine`` selects the annealing cost engine (``"array"`` or
    ``"object"``; ``None`` defers to ``$REPRO_SA_ENGINE``, then the
    default ``"array"``).  Both engines are bit-identical — same float
    sequence, same RNG stream, same placements — so like the other
    performance knobs it is excluded from stage cache keys.

    ``utilization`` is the flow-a standard-cell utilization target: die
    sizing inflates total cell area by ``1/utilization`` when building
    the placement grid.  It is a *semantic* knob (placement and die area
    depend on it), so it participates in the ``physical`` stage cache
    key.  The :data:`PERF_KNOBS` frozenset above is the authoritative
    list of fields that do NOT participate in cache keys.
    """

    arch: str = "granular"
    period: float = DEFAULT_CLOCK_PERIOD_NS
    seed: int = 0
    opt_effort: int = 1
    run_compaction: bool = True
    place_iterations: int = 2
    place_effort: float = 1.0
    pack_iterations: int = 2
    pack_headroom: float = 1.15
    utilization: float = 0.70
    routing_tracks: int = 28
    routing_bins_per_side: int = 12
    jobs: int = 1
    schedule: str = "stage"
    use_cache: bool = True
    observe: bool = False
    check: bool = False
    sa_engine: Optional[str] = None

    def with_arch(self, arch: str) -> "FlowOptions":
        from dataclasses import replace

        return replace(self, arch=arch)

    # -- JSON round-trip (job submissions, ``repro.serve``) ------------
    def to_dict(self) -> Dict[str, Any]:
        """The options as a plain JSON-ready dict (field name -> value)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowOptions":
        """Rebuild options from a (possibly partial) JSON dict.

        Unknown keys raise :class:`ValueError` — a typo in a job
        submission must be rejected at admission, not silently ignored
        (it would change which cache chain the request coalesces onto).
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown flow option(s) {unknown} "
                f"(choices: {sorted(known)})"
            )
        return cls(**data)
