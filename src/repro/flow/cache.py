"""Content-addressed stage cache for the design flow.

Each flow stage (synthesis, physical synthesis, routing/STA, packing) is
a deterministic function of (input netlist, architecture, stage options,
seed), so its result can be keyed by a stable hash of those components
and persisted across processes and invocations.  Repeated benchmark or
experiment runs then skip every unchanged prefix of the pipeline.

Entries live under ``~/.cache/repro`` (override with the
``REPRO_CACHE_DIR`` environment variable; set ``REPRO_NO_CACHE=1`` to
disable caching globally).  Every entry embeds a SHA-256 digest of its
pickled payload; a digest mismatch on read (truncated or corrupted file)
is counted, the entry is discarded, and the stage is recomputed — a bad
cache can cost time but never correctness.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..netlist.core import Netlist
from ..obs import core as _obs

#: Bump to invalidate all existing cache entries on format changes.
#: 2: SynthesisResult.pre_compaction_netlist + DesignRun.packed.
CACHE_FORMAT_VERSION = 2

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_globally_disabled() -> bool:
    return os.environ.get(CACHE_DISABLE_ENV, "") not in ("", "0")


def canonical_netlist(netlist: Netlist) -> str:
    """A stable, content-complete text form of a netlist.

    Instances are emitted in sorted order with their cell type, pin
    connections and configuration mask, so two netlists with the same
    structure canonicalize identically regardless of construction order.
    """
    parts = [
        f"netlist:{netlist.name}",
        "in:" + ",".join(netlist.inputs),
        "out:" + ",".join(netlist.outputs),
    ]
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        pins = ",".join(f"{p}={n}" for p, n in sorted(inst.pin_nets.items()))
        cfg = "seq" if inst.config is None else f"{inst.config.n_inputs}:{inst.config.mask}"
        parts.append(f"{name}|{inst.cell.name}|{pins}|{cfg}")
    return "\n".join(parts)


def stable_hash(*components: Any) -> str:
    """SHA-256 over the repr of the components (order-sensitive)."""
    h = hashlib.sha256()
    for component in components:
        if isinstance(component, Netlist):
            component = canonical_netlist(component)
        h.update(repr(component).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/volume counters for one cache (or an aggregate)."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.corrupt += other.corrupt
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written

    def format(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, {self.corrupt} corrupt, "
            f"{self.bytes_read} B read, {self.bytes_written} B written"
        )


class StageCache:
    """Content-addressed store of pickled stage results.

    File format: ``<hex sha256 of payload>\\n<payload>``.  Writes go
    through a temp file + atomic rename so concurrent workers never see
    partial entries (a torn read would be caught by the digest anyway).
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        enabled: bool = True,
        respect_env: bool = True,
    ):
        """``respect_env=False`` ignores ``REPRO_NO_CACHE`` — used by the
        stage-graph scheduler's private *transport* cache, which is an
        IPC rendezvous in a throwaway directory, not a persistent cache,
        and must work even when persistent caching is globally off."""
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled and not (
            respect_env and cache_globally_disabled()
        )
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key(self, stage: str, *components: Any) -> str:
        return stable_hash(CACHE_FORMAT_VERSION, stage, *components)

    def _path(self, stage: str, key: str) -> Path:
        return self.root / stage / f"{key}.pkl"

    def has(self, stage: str, key: str) -> bool:
        """Whether an entry for (stage, key) exists on disk.

        Existence only — a corrupt entry still reports True and is
        caught (and discarded) by the digest check on :meth:`get`.  Used
        by the stage-graph scheduler to collapse already-cached DAG
        nodes without deserializing their payloads.
        """
        return self.enabled and self._path(stage, key).is_file()

    def get(self, stage: str, key: str) -> Optional[Any]:
        """The cached result, or ``None`` on miss/corruption."""
        if not self.enabled:
            return None
        path = self._path(stage, key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            _obs.counter("cache.miss")
            _obs.point("cache", stage=stage, outcome="miss")
            return None
        digest, sep, payload = raw.partition(b"\n")
        ok = bool(sep) and hashlib.sha256(payload).hexdigest().encode() == digest
        if ok:
            try:
                result = pickle.loads(payload)
            except Exception:
                ok = False
        if not ok:
            self.stats.corrupt += 1
            self.stats.misses += 1
            _obs.counter("cache.corrupt")
            _obs.counter("cache.miss")
            _obs.point("cache", stage=stage, outcome="corrupt", bytes=len(raw))
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(raw)
        try:
            os.utime(path)  # recency signal for `repro cache gc` (LRU)
        except OSError:
            pass
        _obs.counter("cache.hit")
        _obs.point("cache", stage=stage, outcome="hit", bytes=len(raw))
        return result

    def put(self, stage: str, key: str, value: Any) -> None:
        if not self.enabled:
            return
        path = self._path(stage, key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return  # a read-only or full cache dir silently degrades to no-op
        self.stats.bytes_written += len(blob)
        _obs.counter("cache.write")
        _obs.counter("cache.bytes_written", len(blob))


class NullCache(StageCache):
    """A disabled cache (used when ``FlowOptions.use_cache`` is off)."""

    def __init__(self):
        super().__init__(root=Path(os.devnull), enabled=False)


# ----------------------------------------------------------------------
# Cache maintenance (`repro cache stats` / `repro cache gc`).
#
# The content-addressed store grows without bound by construction —
# every new netlist/option/seed combination adds entries and nothing
# ever removes them.  `get` refreshes an entry's mtime on every hit, so
# mtime order is LRU order and eviction can be both size- and age-based.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache entry (stat snapshot, payload never read)."""

    path: Path
    stage: str
    size: int
    mtime: float


@dataclass
class GcReport:
    """What one :func:`collect_garbage` pass did (or would do)."""

    scanned: int = 0
    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    errors: int = 0
    dry_run: bool = False
    removed_paths: List[str] = field(default_factory=list)

    def format(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"{self.scanned} entries scanned; {verb} {self.removed} "
            f"({self.freed_bytes} B), kept {self.kept} "
            f"({self.kept_bytes} B), {self.errors} errors"
        )


def iter_entries(root: Optional[Path] = None) -> List[CacheEntry]:
    """Every cache entry under ``root``, sorted oldest-first (LRU order).

    Tolerant by design: files that vanish or fail to ``stat`` mid-scan
    are skipped, non-``.pkl`` strays are ignored, and a missing root
    yields an empty list.  Sort ties on path so the order is stable on
    filesystems with coarse mtimes.
    """
    root = Path(root) if root is not None else default_cache_dir()
    entries: List[CacheEntry] = []
    if not root.is_dir():
        return entries
    for path in root.glob("*/*.pkl"):
        try:
            st = path.stat()
        except OSError:
            continue
        entries.append(
            CacheEntry(
                path=path, stage=path.parent.name,
                size=st.st_size, mtime=st.st_mtime,
            )
        )
    entries.sort(key=lambda e: (e.mtime, str(e.path)))
    return entries


def usage_summary(root: Optional[Path] = None) -> Dict[str, Any]:
    """Per-stage entry counts and byte totals for ``repro cache stats``."""
    root = Path(root) if root is not None else default_cache_dir()
    entries = iter_entries(root)
    stages: Dict[str, Dict[str, int]] = {}
    for entry in entries:
        bucket = stages.setdefault(entry.stage, {"entries": 0, "bytes": 0})
        bucket["entries"] += 1
        bucket["bytes"] += entry.size
    summary: Dict[str, Any] = {
        "root": str(root),
        "entries": len(entries),
        "bytes": sum(e.size for e in entries),
        "stages": {name: stages[name] for name in sorted(stages)},
    }
    if entries:
        summary["oldest_mtime"] = entries[0].mtime
        summary["newest_mtime"] = entries[-1].mtime
    return summary


def parse_size(text: str) -> int:
    """``"500M"``/``"2G"``/``"1024"`` -> bytes (suffixes K/M/G/T, base 1024)."""
    raw = text.strip()
    suffixes = {"K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}
    factor = 1
    if raw and raw[-1].upper() in suffixes:
        factor = suffixes[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"unparsable size {text!r}") from None
    if value < 0:
        raise ValueError(f"negative size {text!r}")
    return int(value * factor)


def parse_age(text: str) -> float:
    """``"7d"``/``"12h"``/``"30m"``/``"45s"``/``"3600"`` -> seconds."""
    raw = text.strip()
    suffixes = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    factor = 1.0
    if raw and raw[-1].lower() in suffixes:
        factor = suffixes[raw[-1].lower()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"unparsable age {text!r}") from None
    if value < 0:
        raise ValueError(f"negative age {text!r}")
    return value * factor


def collect_garbage(
    root: Optional[Path] = None,
    max_bytes: Optional[int] = None,
    max_age_seconds: Optional[float] = None,
    dry_run: bool = False,
    now: Optional[float] = None,
) -> GcReport:
    """Evict cache entries by age and/or LRU order until within budget.

    Entries older than ``max_age_seconds`` go first; then the
    least-recently-used entries (oldest mtime — refreshed on every
    cache hit) are removed until the remainder fits ``max_bytes``.
    Corruption-tolerant: an entry that cannot be removed (permission,
    stray directory masquerading as an entry, concurrent deletion) is
    counted in ``errors`` and never aborts the pass — gc can cost time
    but never correctness, mirroring the read path.
    """
    if now is None:
        now = time.time()  # check: allow(DT002) gc ages entries by wall clock
    report = GcReport(dry_run=dry_run)
    entries = iter_entries(root)
    report.scanned = len(entries)

    doomed: List[CacheEntry] = []
    survivors: List[CacheEntry] = []
    if max_age_seconds is not None:
        cutoff = now - max_age_seconds
        for entry in entries:
            (doomed if entry.mtime < cutoff else survivors).append(entry)
    else:
        survivors = list(entries)
    if max_bytes is not None:
        live_bytes = sum(e.size for e in survivors)
        index = 0  # survivors are oldest-first: evict from the front
        while live_bytes > max_bytes and index < len(survivors):
            entry = survivors[index]
            doomed.append(entry)
            live_bytes -= entry.size
            index += 1
        survivors = survivors[index:]

    for entry in doomed:
        if not dry_run:
            try:
                entry.path.unlink()
            except FileNotFoundError:
                pass  # racing gc/eviction already removed it
            except OSError:
                report.errors += 1
                report.kept += 1
                report.kept_bytes += entry.size
                continue
        report.removed += 1
        report.freed_bytes += entry.size
        report.removed_paths.append(str(entry.path))
    report.kept += len(survivors)
    report.kept_bytes += sum(e.size for e in survivors)
    return report
