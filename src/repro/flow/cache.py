"""Content-addressed stage cache for the design flow.

Each flow stage (synthesis, physical synthesis, routing/STA, packing) is
a deterministic function of (input netlist, architecture, stage options,
seed), so its result can be keyed by a stable hash of those components
and persisted across processes and invocations.  Repeated benchmark or
experiment runs then skip every unchanged prefix of the pipeline.

Entries live under ``~/.cache/repro`` (override with the
``REPRO_CACHE_DIR`` environment variable; set ``REPRO_NO_CACHE=1`` to
disable caching globally).  Every entry embeds a SHA-256 digest of its
pickled payload; a digest mismatch on read (truncated or corrupted file)
is counted, the entry is discarded, and the stage is recomputed — a bad
cache can cost time but never correctness.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from ..netlist.core import Netlist
from ..obs import core as _obs

#: Bump to invalidate all existing cache entries on format changes.
#: 2: SynthesisResult.pre_compaction_netlist + DesignRun.packed.
CACHE_FORMAT_VERSION = 2

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_globally_disabled() -> bool:
    return os.environ.get(CACHE_DISABLE_ENV, "") not in ("", "0")


def canonical_netlist(netlist: Netlist) -> str:
    """A stable, content-complete text form of a netlist.

    Instances are emitted in sorted order with their cell type, pin
    connections and configuration mask, so two netlists with the same
    structure canonicalize identically regardless of construction order.
    """
    parts = [
        f"netlist:{netlist.name}",
        "in:" + ",".join(netlist.inputs),
        "out:" + ",".join(netlist.outputs),
    ]
    for name in sorted(netlist.instances):
        inst = netlist.instances[name]
        pins = ",".join(f"{p}={n}" for p, n in sorted(inst.pin_nets.items()))
        cfg = "seq" if inst.config is None else f"{inst.config.n_inputs}:{inst.config.mask}"
        parts.append(f"{name}|{inst.cell.name}|{pins}|{cfg}")
    return "\n".join(parts)


def stable_hash(*components: Any) -> str:
    """SHA-256 over the repr of the components (order-sensitive)."""
    h = hashlib.sha256()
    for component in components:
        if isinstance(component, Netlist):
            component = canonical_netlist(component)
        h.update(repr(component).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/volume counters for one cache (or an aggregate)."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.corrupt += other.corrupt
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written

    def format(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, {self.corrupt} corrupt, "
            f"{self.bytes_read} B read, {self.bytes_written} B written"
        )


class StageCache:
    """Content-addressed store of pickled stage results.

    File format: ``<hex sha256 of payload>\\n<payload>``.  Writes go
    through a temp file + atomic rename so concurrent workers never see
    partial entries (a torn read would be caught by the digest anyway).
    """

    def __init__(self, root: Optional[Path] = None, enabled: bool = True):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled and not cache_globally_disabled()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key(self, stage: str, *components: Any) -> str:
        return stable_hash(CACHE_FORMAT_VERSION, stage, *components)

    def _path(self, stage: str, key: str) -> Path:
        return self.root / stage / f"{key}.pkl"

    def get(self, stage: str, key: str) -> Optional[Any]:
        """The cached result, or ``None`` on miss/corruption."""
        if not self.enabled:
            return None
        path = self._path(stage, key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            _obs.counter("cache.miss")
            _obs.point("cache", stage=stage, outcome="miss")
            return None
        digest, sep, payload = raw.partition(b"\n")
        ok = bool(sep) and hashlib.sha256(payload).hexdigest().encode() == digest
        if ok:
            try:
                result = pickle.loads(payload)
            except Exception:
                ok = False
        if not ok:
            self.stats.corrupt += 1
            self.stats.misses += 1
            _obs.counter("cache.corrupt")
            _obs.counter("cache.miss")
            _obs.point("cache", stage=stage, outcome="corrupt", bytes=len(raw))
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(raw)
        _obs.counter("cache.hit")
        _obs.point("cache", stage=stage, outcome="hit", bytes=len(raw))
        return result

    def put(self, stage: str, key: str, value: Any) -> None:
        if not self.enabled:
            return
        path = self._path(stage, key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return  # a read-only or full cache dir silently degrades to no-op
        self.stats.bytes_written += len(blob)
        _obs.counter("cache.write")
        _obs.counter("cache.bytes_written", len(blob))


class NullCache(StageCache):
    """A disabled cache (used when ``FlowOptions.use_cache`` is off)."""

    def __init__(self):
        super().__init__(root=Path(os.devnull), enabled=False)
